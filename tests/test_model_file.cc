/**
 * @file
 * v2 model container round-trip and zero-copy load-path suite: export
 * → mmap-load must be byte-identical to quantize-then-pack (tiles,
 * logits, generation) across SIMD × thread settings, with every tile
 * view pointing into the file mapping; hostile model files must fail
 * with typed PackedFormatError naming the offending file offset.
 */

#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/packed.h"
#include "model/generation.h"
#include "model/model_file.h"
#include "serve/serving_engine.h"
#include "test_util.h"

namespace mant {
namespace {

std::vector<int32_t>
tokens(int n, uint64_t seed, int vocab)
{
    Rng rng(seed);
    std::vector<int32_t> t(static_cast<size_t>(n));
    for (auto &x : t)
        x = static_cast<int32_t>(
            rng.uniformInt(static_cast<uint64_t>(vocab)));
    return t;
}

std::string
tempPath(const char *tag)
{
    return ::testing::TempDir() + "mant_model_" + tag + ".mant";
}

/** Export `weights` under `setup` to a file and return the path. */
std::string
exported(const char *tag, const ModelWeights &weights,
         const QuantSetup &setup, float logitScale = 1.0f)
{
    const std::string path = tempPath(tag);
    ModelExportOptions opts;
    opts.logitScale = logitScale;
    exportModelToFile(path, weights, setup, opts);
    return path;
}

/** Overwrite the little-endian u64 at `off` in `bytes`. */
void
patchU64(std::string &bytes, size_t off, uint64_t value)
{
    ASSERT_LE(off + 8, bytes.size());
    std::memcpy(bytes.data() + off, &value, 8);
}

/** Assert `fn` throws PackedFormatError carrying this offset. */
template <typename Fn>
void
expectFormatError(Fn &&fn, const std::string &msgPrefix, uint64_t off)
{
    try {
        fn();
        ADD_FAILURE() << "expected PackedFormatError: " << msgPrefix;
    } catch (const PackedFormatError &e) {
        EXPECT_EQ(std::string(e.what()).rfind(msgPrefix, 0), 0u)
            << e.what();
        EXPECT_EQ(e.offset(), off) << e.what();
    }
}

TEST(ModelFile, RoundTripLogitsBitIdentical)
{
    const ModelProfile profile = test::tinyProfile();
    const ModelWeights weights = ModelWeights::generate(profile, 128);
    const QuantSetup setup = mantFusedSetup();
    const auto toks = tokens(20, 900, 128);

    Transformer ref(weights, setup);
    const Tensor want = ref.prefill(toks);
    const std::vector<float> wantStep = ref.decodeStep(3);

    auto loaded =
        LoadedModel::load(exported("roundtrip", weights, setup));
    const Tensor got = loaded->transformer().prefill(toks);
    EXPECT_TRUE(test::bytesEqual(want.span(), got.span()));
    const std::vector<float> gotStep =
        loaded->transformer().decodeStep(3);
    EXPECT_TRUE(test::bytesEqual(wantStep, gotStep));

    EXPECT_EQ(loaded->setup().weight, WeightMethod::Mant);
    EXPECT_TRUE(loaded->setup().fusedInference);
    EXPECT_EQ(loaded->weights().profile.name, "tiny");
    EXPECT_EQ(loaded->weights().maxSeq, 128);
}

TEST(ModelFile, TileBytesIdenticalToDirectQuantization)
{
    const ModelWeights weights =
        ModelWeights::generate(test::tinyProfile(), 64);
    const QuantSetup setup = mantFusedSetup();
    auto loaded =
        LoadedModel::load(exported("tilebytes", weights, setup));

    // Every layer's mapped tiles must hold the exact bytes a direct
    // quantize-then-pack produces: the file IS the compute layout.
    for (size_t l = 0; l < weights.layers.size(); ++l) {
        const LayerWeights &lw = weights.layers[l];
        const LayerTileViews &tv = loaded->tileViews()[l];
        const auto check = [&](const Tensor &w,
                               const MantTilesView &view) {
            const QuantizedLinear direct(w, setup);
            const MantTilesView want = direct.tilesView();
            ASSERT_EQ(want.codesBytes(), view.codesBytes());
            ASSERT_EQ(want.metaCount(), view.metaCount());
            EXPECT_EQ(
                std::memcmp(want.codesData(), view.codesData(),
                            static_cast<size_t>(want.codesBytes())),
                0);
            EXPECT_EQ(
                std::memcmp(want.scalesData(), view.scalesData(),
                            static_cast<size_t>(want.metaCount()) * 4),
                0);
            EXPECT_EQ(
                std::memcmp(want.coeffData(), view.coeffData(),
                            static_cast<size_t>(want.metaCount())),
                0);
            EXPECT_EQ(
                std::memcmp(want.isIntData(), view.isIntData(),
                            static_cast<size_t>(want.metaCount())),
                0);
        };
        check(lw.wq, tv.wq);
        check(lw.wk, tv.wk);
        check(lw.wv, tv.wv);
        check(lw.wo, tv.wo);
        check(lw.wGate, tv.wGate);
        check(lw.wUp, tv.wUp); // Llama: present in both
        check(lw.wDown, tv.wDown);
    }
}

TEST(ModelFile, ViewsPointIntoMappingZeroCopy)
{
    const ModelWeights weights =
        ModelWeights::generate(test::tinyProfile(), 64);
    auto loaded = LoadedModel::load(
        exported("zerocopy", weights, mantFusedSetup()));

    const uint8_t *lo = loaded->file().data();
    const uint8_t *hi = lo + loaded->file().size();
    const auto inside = [&](const MantTilesView &v) {
        EXPECT_GE(v.codesData(), lo);
        EXPECT_LT(v.codesData() + v.codesBytes(), hi + 1);
        EXPECT_GE(reinterpret_cast<const uint8_t *>(v.scalesData()),
                  lo);
        EXPECT_LT(v.isIntData() + v.metaCount(), hi + 1);
    };
    for (const LayerTileViews &tv : loaded->tileViews()) {
        inside(tv.wq);
        inside(tv.wk);
        inside(tv.wv);
        inside(tv.wo);
        inside(tv.wGate);
        inside(tv.wUp);
        inside(tv.wDown);
    }
}

TEST(ModelFile, ReadFallbackMatchesMmap)
{
    const ModelWeights weights =
        ModelWeights::generate(test::tinyProfile(), 64);
    const std::string path =
        exported("fallback", weights, mantFusedSetup());
    const auto toks = tokens(12, 901, 128);

    auto viaMmap = LoadedModel::load(path);
    auto viaRead = LoadedModel::load(path, /*forceRead=*/true);
    EXPECT_FALSE(viaRead->file().mapped());
    const Tensor a = viaMmap->transformer().prefill(toks);
    const Tensor b = viaRead->transformer().prefill(toks);
    EXPECT_TRUE(test::bytesEqual(a.span(), b.span()));
}

TEST(ModelFile, LogitScaleSurvivesRoundTrip)
{
    const ModelWeights weights =
        ModelWeights::generate(test::tinyProfile(), 64);
    auto loaded = LoadedModel::load(
        exported("logit", weights, mantFusedSetup(), 0.625f));
    EXPECT_FLOAT_EQ(loaded->transformer().logitScale(), 0.625f);
}

TEST(ModelFile, OptFamilyRoundTrip)
{
    // OPT exercises the branches Llama does not: learned positional
    // embeddings serialize, and there is no SwiGLU up projection.
    const ModelProfile profile =
        test::tinyProfile(ModelFamily::Opt);
    const ModelWeights weights = ModelWeights::generate(profile, 96);
    const QuantSetup setup = mantFusedSetup();
    const auto toks = tokens(16, 902, 128);

    Transformer ref(weights, setup);
    const Tensor want = ref.prefill(toks);

    auto loaded = LoadedModel::load(exported("opt", weights, setup));
    EXPECT_FALSE(loaded->tileViews()[0].wUp.valid());
    EXPECT_GT(loaded->weights().posEmbedding.numel(), 0);
    const Tensor got = loaded->transformer().prefill(toks);
    EXPECT_TRUE(test::bytesEqual(want.span(), got.span()));
}

class GroupSweep : public ::testing::TestWithParam<int64_t>
{
};

TEST_P(GroupSweep, RaggedShapesRoundTripBitIdentical)
{
    // Ragged geometry: dModel = 72 and dFfn = 84 are not multiples of
    // group 40 (nor of the panel width), so padded tile columns and
    // short trailing groups all cross the wire format.
    ModelProfile profile = test::tinyProfile();
    profile.simDims.dModel = 72;
    profile.simDims.dFfn = 84;
    const ModelWeights weights = ModelWeights::generate(profile, 64);
    const QuantSetup setup = mantFusedSetup(GetParam());
    const auto toks = tokens(10, 903, 128);

    Transformer ref(weights, setup);
    const Tensor want = ref.prefill(toks);
    const std::string tag =
        "group" + std::to_string(GetParam() + 1);
    auto loaded =
        LoadedModel::load(exported(tag.c_str(), weights, setup));
    const Tensor got = loaded->transformer().prefill(toks);
    EXPECT_TRUE(test::bytesEqual(want.span(), got.span()));
}

INSTANTIATE_TEST_SUITE_P(Groups, GroupSweep,
                         ::testing::Values(int64_t{-1}, int64_t{1},
                                           int64_t{40}));

TEST(ModelFile, ParityAcrossSimdAndThreads)
{
    const ModelWeights weights =
        ModelWeights::generate(test::tinyProfile(), 64);
    const QuantSetup setup = mantFusedSetup();
    const std::string path = exported("parity", weights, setup);
    const auto toks = tokens(12, 904, 128);

    Transformer ref(weights, setup);
    const Tensor want = ref.prefill(toks);

    const SimdPath paths[] = {SimdPath::Scalar, SimdPath::Auto};
    for (SimdPath path_sel : paths) {
        for (int nthreads : {1, 3}) {
            const Tensor got =
                test::withPath(path_sel, nthreads, [&] {
                    auto loaded = LoadedModel::load(path);
                    return loaded->transformer().prefill(toks);
                });
            EXPECT_TRUE(test::bytesEqual(want.span(), got.span()))
                << simdPathName(path_sel) << " x " << nthreads;
        }
    }
}

TEST(ModelFile, ServingEngineBootsFromLoadedModel)
{
    const ModelWeights weights =
        ModelWeights::generate(test::tinyProfile(), 128);
    const QuantSetup setup = mantFusedSetup();
    const std::string path = exported("serving", weights, setup);
    const auto prompt = tokens(8, 905, 128);

    // Serial oracle over the in-memory model.
    Transformer ref(weights, setup);
    const std::vector<int32_t> want =
        greedyGenerate(ref, prompt, 6);

    std::shared_ptr<LoadedModel> loaded = LoadedModel::load(path);
    ServingEngine engine(loaded);
    GenRequest req;
    req.prompt = prompt;
    req.maxNewTokens = 6;
    const RequestId id = engine.submit(req);
    engine.run();
    EXPECT_EQ(engine.output(id), want);
}

TEST(ModelFile, ExportRejectsNonFusedSetups)
{
    const ModelWeights weights =
        ModelWeights::generate(test::tinyProfile(), 64);
    std::ostringstream os;
    EXPECT_THROW(exportModel(os, weights, fp16Setup()),
                 std::invalid_argument);
    QuantSetup unfused = mantFusedSetup();
    unfused.fusedInference = false;
    EXPECT_THROW(exportModel(os, weights, unfused),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------
// Hostile model files.

class HostileModelFile : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const ModelWeights weights =
            ModelWeights::generate(test::tinyProfile(), 64);
        std::ostringstream os;
        exportModel(os, weights, mantFusedSetup());
        bytes_ = os.str();
    }

    /** Write (possibly corrupted) bytes and load them. */
    std::unique_ptr<LoadedModel>
    loadBytes(const std::string &bytes) const
    {
        const std::string path = tempPath("hostile");
        std::ofstream of(path, std::ios::binary | std::ios::trunc);
        of.write(bytes.data(),
                 static_cast<std::streamsize>(bytes.size()));
        of.close();
        return LoadedModel::load(path);
    }

    /** TOC index and entry of the named section. */
    size_t
    entryIndex(const std::string &name) const
    {
        const auto toc =
            parseModelContainer(bytes_.data(), bytes_.size());
        for (size_t i = 0; i < toc.size(); ++i)
            if (toc[i].name == name)
                return i;
        ADD_FAILURE() << "no section " << name;
        return 0;
    }

    ModelSection
    section(const std::string &name) const
    {
        const auto toc =
            parseModelContainer(bytes_.data(), bytes_.size());
        return toc[entryIndex(name)];
    }

    std::string bytes_;
};

TEST_F(HostileModelFile, MissingSectionIsTyped)
{
    // Rename "embedding" so the loader cannot find it.
    const size_t idx = entryIndex("embedding");
    std::string bad = bytes_;
    bad[64 + idx * 64] = 'X';
    expectFormatError([&] { loadBytes(bad); },
                      "model file: missing section 'embedding'", 64);
}

TEST_F(HostileModelFile, WrongKindIsTyped)
{
    const size_t idx = entryIndex("embedding");
    std::string bad = bytes_;
    bad[64 + idx * 64 + 40] = 3; // F32 -> Meta
    expectFormatError(
        [&] { loadBytes(bad); },
        "model file: section 'embedding' has the wrong kind",
        64 + idx * 64 + 40);
}

TEST_F(HostileModelFile, WrongSectionSizeIsTyped)
{
    // Shrink final_norm_gain: claims fewer floats than dModel. The
    // smaller claimed size stays inside the old extent, so container
    // overlap checks pass and the model-level size check must fire.
    const size_t idx = entryIndex("final_norm_gain");
    std::string bad = bytes_;
    patchU64(bad, 64 + idx * 64 + 56, section("final_norm_gain").size - 4);
    expectFormatError(
        [&] { loadBytes(bad); },
        "model file: section 'final_norm_gain' has the wrong size",
        64 + idx * 64 + 48);
}

TEST_F(HostileModelFile, MetaVersionIsTyped)
{
    const ModelSection meta = section("meta");
    std::string bad = bytes_;
    bad[meta.offset] = 9;
    expectFormatError([&] { loadBytes(bad); },
                      "model file: unsupported meta version",
                      meta.offset);
}

TEST_F(HostileModelFile, MetaFamilyIsTyped)
{
    const ModelSection meta = section("meta");
    std::string bad = bytes_;
    bad[meta.offset + 4] = 7;
    expectFormatError([&] { loadBytes(bad); },
                      "model file: invalid model family",
                      meta.offset + 4);
}

TEST_F(HostileModelFile, MetaDimensionsAreTyped)
{
    const ModelSection meta = section("meta");
    std::string bad = bytes_;
    bad[meta.offset + 8 + 7] = '\x80'; // nLayers < 0
    expectFormatError([&] { loadBytes(bad); },
                      "model file: implausible model dimensions",
                      meta.offset + 8);
}

TEST_F(HostileModelFile, MetaTruncationIsTyped)
{
    // Cut the meta section's claimed size down mid-struct. Claimed
    // size lives in the TOC; shrink it so the cursor runs dry.
    const size_t idx = entryIndex("meta");
    std::string bad = bytes_;
    patchU64(bad, 64 + idx * 64 + 56, 10); // 10 bytes of meta
    const ModelSection meta = section("meta");
    expectFormatError([&] { loadBytes(bad); },
                      "model file: truncated meta section",
                      meta.offset + 8);
}

TEST_F(HostileModelFile, MetaTrailingGarbageIsTyped)
{
    // Grow the meta section's claimed size: the loader must reject
    // unconsumed trailing bytes instead of silently ignoring them.
    const size_t idx = entryIndex("meta");
    const ModelSection meta = section("meta");
    std::string bad = bytes_;
    patchU64(bad, 64 + idx * 64 + 56, meta.size + 4);
    expectFormatError([&] { loadBytes(bad); },
                      "model file: garbage after meta fields",
                      meta.offset + meta.size);
}

TEST_F(HostileModelFile, NonMantSetupInMetaIsTyped)
{
    // Flip the stored weight method to Int: structurally valid meta,
    // but the file format only carries fused-MANT models.
    const ModelSection meta = section("meta");
    std::string bad = bytes_;
    // weight method u32 sits after: 2 u32 + 6 i64 + u64 + f64 + f32.
    const size_t weightOff = 4 + 4 + 48 + 8 + 8 + 4;
    bad[meta.offset + weightOff] = 1; // WeightMethod::Int
    expectFormatError([&] { loadBytes(bad); },
                      "model file: setup is not fused 4-bit MANT",
                      meta.offset);
}

TEST_F(HostileModelFile, TileGeometryMismatchIsTyped)
{
    // Corrupt layer0/wq's stored panel count: mapTileSection must
    // reject the section with its absolute file offset.
    const ModelSection wq = section("layer0/wq");
    std::string bad = bytes_;
    bad[wq.offset + 24] =
        static_cast<char>(bad[wq.offset + 24] + 1);
    expectFormatError([&] { loadBytes(bad); },
                      "mapTileSection: panel count mismatch",
                      wq.offset + 24);
}

TEST_F(HostileModelFile, TileProfileDisagreementIsTyped)
{
    // Self-consistent tile sections of the WRONG shape for the stated
    // profile: shrink the meta dFfn (96 -> 88, still a plausible
    // profile), so the first FFN tile section (dFfn x dModel) no
    // longer matches the dims the model claims. The loader must catch
    // the disagreement at that section's TOC entry — not construct a
    // transformer over mis-shaped views.
    const ModelSection meta = section("meta");
    std::string bad = bytes_;
    bad[meta.offset + 8 + 24] = 88; // dFfn field
    expectFormatError(
        [&] { loadBytes(bad); },
        "model file: tile section 'layer0/wgate' disagrees",
        64 + entryIndex("layer0/wgate") * 64);
}

TEST_F(HostileModelFile, TruncatedFileIsTyped)
{
    expectFormatError(
        [&] { loadBytes(bytes_.substr(0, 32)); },
        "model container: truncated header", 0);
    // Cut mid-TOC: the container parser reports the truncated TOC.
    expectFormatError([&] { loadBytes(bytes_.substr(0, 80)); },
                      "model container: truncated TOC", 64);
}

TEST_F(HostileModelFile, EmptyFileIsTyped)
{
    expectFormatError([&] { loadBytes(std::string()); },
                      "model container: truncated header", 0);
}

} // namespace
} // namespace mant
