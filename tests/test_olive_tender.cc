#include <cmath>

#include <gtest/gtest.h>

#include "quant/fixed_formats.h"
#include "quant/group_quantizer.h"
#include "quant/olive.h"
#include "quant/tender.h"
#include "test_util.h"

namespace mant {
namespace {

QuantConfig
chanCfg()
{
    QuantConfig cfg;
    cfg.gran = Granularity::PerChannel;
    return cfg;
}

/** A tensor with one huge outlier per channel. */
Tensor
outlierTensor(uint64_t seed, int64_t rows = 8, int64_t cols = 128,
              float outlier = 50.0f)
{
    Tensor t = test::gaussianTensor(Shape{rows, cols}, seed, 1.0);
    for (int64_t r = 0; r < rows; ++r)
        t.at(r, (r * 13) % cols) = outlier * ((r % 2) ? 1.0f : -1.0f);
    return t;
}

TEST(Olive, BeatsIntOnOutlierData)
{
    const Tensor t = outlierTensor(33);
    QuantStats olive_s, int_s;
    OliveConfig ocfg;
    quantDequantOlive(t, ocfg, chanCfg(), &olive_s);
    quantDequantFixed(t, int4Format(), chanCfg(), &int_s);
    EXPECT_LT(olive_s.mse, int_s.mse * 0.5);
}

TEST(Olive, OutlierMagnitudePreserved)
{
    const Tensor t = outlierTensor(34, 4, 64, 80.0f);
    const Tensor q = quantDequantOlive(t, OliveConfig{}, chanCfg());
    for (int64_t r = 0; r < 4; ++r) {
        const int64_t c = (r * 13) % 64;
        // The outlier survives within a factor-of-2 (PoT abfloat).
        EXPECT_GT(std::fabs(q.at(r, c)), 40.0f);
        EXPECT_LT(std::fabs(q.at(r, c)), 160.0f);
        EXPECT_EQ(std::signbit(q.at(r, c)), std::signbit(t.at(r, c)));
    }
}

TEST(Olive, VictimIsZeroed)
{
    Tensor t(Shape{1, 8}, {0.5f, 0.4f, 40.0f, 0.3f,
                           0.2f, -0.1f, 0.6f, 0.1f});
    const Tensor q = quantDequantOlive(t, OliveConfig{}, chanCfg());
    // Element 2 is the outlier; its pair partner (3) is the victim.
    EXPECT_EQ(q.at(0, 3), 0.0f);
    EXPECT_GT(std::fabs(q.at(0, 2)), 10.0f);
}

TEST(Olive, CleanDataUnaffectedByPairing)
{
    // Without outliers OliVe degenerates to plain INT quantization.
    const Tensor t = test::gaussianTensor(Shape{4, 128}, 35, 0.1);
    QuantStats olive_s, int_s;
    quantDequantOlive(t, OliveConfig{}, chanCfg(), &olive_s);
    quantDequantFixed(t, int4Format(), chanCfg(), &int_s);
    EXPECT_LT(olive_s.mse, int_s.mse * 3.0);
}

TEST(Olive, SmallGroupsSufferFromVictims)
{
    // Tbl. V phenomenon: with shrinking groups, zeroed victims start
    // to cost more than outlier protection buys.
    DistProfile p;
    p.outlierRate = 0.01;
    p.outlierScale = 15.0;
    Rng rng(36);
    const Tensor w = genWeightMatrix(rng, 16, 512, p);

    QuantConfig g128;
    g128.gran = Granularity::PerGroup;
    g128.groupSize = 128;
    QuantConfig g32 = g128;
    g32.groupSize = 32;

    QuantStats olive128, olive32, int128, int32;
    quantDequantOlive(w, OliveConfig{}, g128, &olive128);
    quantDequantOlive(w, OliveConfig{}, g32, &olive32);
    quantDequantFixed(w, int4Format(), g128, &int128);
    quantDequantFixed(w, int4Format(), g32, &int32);

    // INT improves more from group shrinking than OliVe does.
    const double int_gain = int128.mse / int32.mse;
    const double olive_gain = olive128.mse / (olive32.mse + 1e-18);
    EXPECT_GT(int_gain, olive_gain * 0.9);
}

TEST(Olive, EightBitMode)
{
    const Tensor t = outlierTensor(37);
    OliveConfig ocfg;
    ocfg.bits = 8;
    QuantStats s8, s4;
    quantDequantOlive(t, ocfg, chanCfg(), &s8);
    quantDequantOlive(t, OliveConfig{}, chanCfg(), &s4);
    EXPECT_LT(s8.mse, s4.mse);
}

TEST(Tender, BeatsPerTensorIntOnSpreadChannels)
{
    DistProfile p;
    p.sigmaSpread = 0.8;
    p.outlierRate = 0.0;
    Rng rng(38);
    const Tensor w = genWeightMatrix(rng, 64, 128, p);

    QuantStats tender_s, int_s;
    quantDequantTender(w, TenderConfig{}, true, &tender_s);
    QuantConfig cfg;
    cfg.gran = Granularity::PerTensor;
    quantDequantFixed(w, int4Format(), cfg, &int_s);
    EXPECT_LT(tender_s.mse, int_s.mse);
}

TEST(Tender, ChannelScalesArePowerOfTwoRelated)
{
    // Reconstruction per channel must use base/2^k: verify every
    // channel's implied scale is the chunk base over a power of two by
    // checking quantized values land on that channel's lattice.
    DistProfile p;
    p.sigmaSpread = 0.6;
    Rng rng(39);
    const Tensor w = genWeightMatrix(rng, 16, 64, p);
    TenderConfig tcfg;
    tcfg.numChunks = 2;
    const Tensor q = quantDequantTender(w, tcfg, false);

    for (int64_t r = 0; r < 16; ++r) {
        // Smallest nonzero |q| on the row divides all others ~exactly.
        float unit = 0.0f;
        for (float v : q.row(r)) {
            const float a = std::fabs(v);
            if (a > 0.0f && (unit == 0.0f || a < unit))
                unit = a;
        }
        if (unit == 0.0f)
            continue;
        for (float v : q.row(r)) {
            const float ratio = std::fabs(v) / unit;
            EXPECT_NEAR(ratio, std::round(ratio), 1e-3)
                << "row " << r;
        }
    }
}

TEST(Tender, EightBitMode)
{
    const Tensor t = outlierTensor(40);
    TenderConfig t8;
    t8.bits = 8;
    QuantStats s8, s4;
    quantDequantTender(t, t8, true, &s8);
    quantDequantTender(t, TenderConfig{}, true, &s4);
    EXPECT_LT(s8.mse, s4.mse);
}

TEST(Tender, StatsReportChunks)
{
    const Tensor t = test::gaussianTensor(Shape{32, 64}, 41);
    TenderConfig tcfg;
    tcfg.numChunks = 8;
    QuantStats s;
    quantDequantTender(t, tcfg, true, &s);
    EXPECT_EQ(s.unitCount, 8);
    EXPECT_GT(s.metaBits, 0.0);
}

TEST(Tender, SingleChannelDegenerate)
{
    const Tensor t = test::gaussianTensor(Shape{1, 64}, 42);
    QuantStats s;
    quantDequantTender(t, TenderConfig{}, true, &s);
    EXPECT_GT(s.mse, 0.0);
    EXPECT_LT(s.nmse, 0.05);
}

} // namespace
} // namespace mant
