#include <cmath>
#include <cstring>
#include <sstream>

#include <gtest/gtest.h>

#include "core/packed.h"
#include "tensor/distribution.h"
#include "test_util.h"

namespace mant {
namespace {

MantQuantizedMatrix
sampleMatrix(uint64_t seed, int64_t rows = 16, int64_t cols = 128,
             int64_t group = 64)
{
    DistProfile p;
    Rng rng(seed);
    const Tensor w = genWeightMatrix(rng, rows, cols, p);
    return MantQuantizedMatrix::quantize(w, group);
}

TEST(Packed, RoundTripExact)
{
    const MantQuantizedMatrix q = sampleMatrix(401);
    const PackedMantMatrix p = pack(q);
    const MantQuantizedMatrix q2 = unpack(p);

    const Tensor a = q.dequantize();
    const Tensor b = q2.dequantize();
    EXPECT_EQ(test::maxDiff(a.span(), b.span()), 0.0);
}

TEST(Packed, RoundTripPreservesMetadata)
{
    const MantQuantizedMatrix q = sampleMatrix(402);
    const MantQuantizedMatrix q2 = unpack(pack(q));
    for (int64_t r = 0; r < q.rows(); ++r) {
        for (int64_t g = 0; g < q.groupsPerRow(); ++g) {
            EXPECT_EQ(q.meta(r, g).a, q2.meta(r, g).a);
            EXPECT_EQ(q.meta(r, g).isInt, q2.meta(r, g).isInt);
            EXPECT_FLOAT_EQ(q.meta(r, g).scale, q2.meta(r, g).scale);
        }
    }
}

TEST(Packed, StorageMatchesPaperArithmetic)
{
    // 4 bits/element + 24 bits per 64-element group = 4.375 bits/elem.
    const MantQuantizedMatrix q = sampleMatrix(403, 8, 128, 64);
    const PackedMantMatrix p = pack(q);
    EXPECT_NEAR(p.bitsPerElement(), 4.375, 1e-9);
    EXPECT_EQ(p.storageBytes(), 8 * 128 / 2 + 8 * 2 * 3);
}

TEST(Packed, OddElementCount)
{
    const MantQuantizedMatrix q = sampleMatrix(404, 3, 33, 16);
    const MantQuantizedMatrix q2 = unpack(pack(q));
    EXPECT_EQ(test::maxDiff(q.dequantize().span(),
                            q2.dequantize().span()),
              0.0);
}

TEST(Packed, FusedGemmEquivalentAfterRoundTrip)
{
    const MantQuantizedMatrix q = sampleMatrix(405);
    const MantQuantizedMatrix q2 = unpack(pack(q));
    const Tensor x = test::gaussianTensor(Shape{4, 128}, 406);
    const auto qx = Int8QuantizedActivations::quantize(x, 64);
    const Tensor y1 = fusedGemm(qx, q);
    const Tensor y2 = fusedGemm(qx, q2);
    EXPECT_EQ(test::maxDiff(y1.span(), y2.span()), 0.0);
}

TEST(Packed, SerializeDeserialize)
{
    const MantQuantizedMatrix q = sampleMatrix(407);
    const PackedMantMatrix p = pack(q);

    std::stringstream ss;
    writePacked(ss, p);
    const PackedMantMatrix p2 = readPacked(ss);

    EXPECT_EQ(p2.rows, p.rows);
    EXPECT_EQ(p2.cols, p.cols);
    EXPECT_EQ(p2.groupSize, p.groupSize);
    EXPECT_EQ(p2.nibbles, p.nibbles);
    EXPECT_EQ(p2.scaleBits, p.scaleBits);
    EXPECT_EQ(p2.typeBytes, p.typeBytes);
}

TEST(Packed, RejectsBadMagic)
{
    std::stringstream ss;
    ss << "NOPE-this-is-not-a-mant-blob";
    EXPECT_THROW(readPacked(ss), std::runtime_error);
}

TEST(Packed, RejectsTruncatedStream)
{
    const MantQuantizedMatrix q = sampleMatrix(408);
    std::stringstream ss;
    writePacked(ss, pack(q));
    const std::string full = ss.str();
    std::stringstream cut(full.substr(0, full.size() / 2));
    EXPECT_THROW(readPacked(cut), std::runtime_error);
}

TEST(Packed, RejectsVersionMismatch)
{
    const MantQuantizedMatrix q = sampleMatrix(409, 2, 16, 16);
    std::stringstream ss;
    writePacked(ss, pack(q));
    std::string bytes = ss.str();
    bytes[4] = 99; // corrupt the version field
    std::stringstream bad(bytes);
    EXPECT_THROW(readPacked(bad), std::runtime_error);
}

TEST(Packed, BitsPerElementEmptyMatrixIsZero)
{
    const PackedMantMatrix empty;
    EXPECT_EQ(empty.bitsPerElement(), 0.0);
    EXPECT_FALSE(std::isnan(empty.bitsPerElement()));
    EXPECT_EQ(empty.storageBytes(), 0);
}

TEST(Packed, RejectsEmptyStream)
{
    std::stringstream ss;
    EXPECT_THROW(readPacked(ss), std::runtime_error);
}

TEST(Packed, RejectsTruncatedHeader)
{
    // Valid magic but the version field is cut short: exercises the
    // readScalar truncation guard rather than the payload check.
    std::stringstream ss;
    ss << "MANT" << '\x01';
    EXPECT_THROW(readPacked(ss), std::runtime_error);
}

TEST(Packed, RejectsNibbleCountMismatch)
{
    const MantQuantizedMatrix q = sampleMatrix(410, 2, 16, 16);
    std::stringstream ss;
    writePacked(ss, pack(q));
    std::string bytes = ss.str();
    bytes[32] = static_cast<char>(bytes[32] + 1); // n_nibbles field
    std::stringstream bad(bytes);
    EXPECT_THROW(readPacked(bad), std::runtime_error);
}

TEST(Packed, RejectsGroupCountMismatch)
{
    // A stream whose group count disagrees with rows x groupsPerRow
    // must be rejected at the header, not crash later in unpack().
    const MantQuantizedMatrix q = sampleMatrix(411, 2, 32, 16);
    std::stringstream ss;
    writePacked(ss, pack(q));
    std::string bytes = ss.str();
    bytes[40] = static_cast<char>(bytes[40] + 1); // n_groups field
    std::stringstream bad(bytes);
    EXPECT_THROW(readPacked(bad), std::runtime_error);
}

TEST(Packed, RejectsImplausibleHeader)
{
    const MantQuantizedMatrix q = sampleMatrix(412, 2, 16, 16);
    std::stringstream ss;
    writePacked(ss, pack(q));
    std::string bytes = ss.str();
    bytes[15] = '\x80'; // sign bit of the rows field: rows < 0
    std::stringstream bad(bytes);
    EXPECT_THROW(readPacked(bad), std::runtime_error);
}

namespace {

// Build a raw header: magic + version + the given geometry/counts.
std::string
rawHeader(int64_t rows, int64_t cols, int64_t groupSize,
          uint64_t nNibbles, uint64_t nGroups)
{
    std::stringstream ss;
    ss.write("MANT", 4);
    const uint32_t version = 1;
    ss.write(reinterpret_cast<const char *>(&version), 4);
    ss.write(reinterpret_cast<const char *>(&rows), 8);
    ss.write(reinterpret_cast<const char *>(&cols), 8);
    ss.write(reinterpret_cast<const char *>(&groupSize), 8);
    ss.write(reinterpret_cast<const char *>(&nNibbles), 8);
    ss.write(reinterpret_cast<const char *>(&nGroups), 8);
    return ss.str();
}

} // namespace

TEST(Packed, RejectsOverflowingDimensions)
{
    // rows * cols would wrap int64 to 0 and sail past every count
    // check; the per-dimension bound must reject it first.
    std::stringstream bad(
        rawHeader(int64_t{1} << 33, int64_t{1} << 31, 1, 0, 0));
    EXPECT_THROW(readPacked(bad), std::runtime_error);
}

TEST(Packed, AcceptsTallSkinnyHeader)
{
    // 2^21 x 1 is a legitimate geometry (writePacked accepts it), so
    // the plausibility check must let it through; with no payload the
    // failure has to be the payload check, not the dimension cap.
    std::stringstream ss(rawHeader(int64_t{1} << 21, 1, 1,
                                   int64_t{1} << 20,
                                   int64_t{1} << 21));
    try {
        readPacked(ss);
        FAIL() << "expected PackedFormatError";
    } catch (const PackedFormatError &e) {
        // The v1 payload starts right after the 48-byte header; the
        // error names the stream offset where validation failed.
        EXPECT_STREQ(e.what(),
                     "readPacked: truncated payload (at offset 48)");
        EXPECT_EQ(e.offset(), 48u);
    }
}

TEST(Packed, RejectsAllocationBombHeader)
{
    // Self-consistent counts naming ~2.5 TiB of buffers with no
    // payload behind them: must throw before allocating anything.
    const int64_t dim = int64_t{1} << 20;
    std::stringstream ss(rawHeader(dim, dim, 1,
                                   (dim * dim + 1) / 2,
                                   dim * dim));
    EXPECT_THROW(readPacked(ss), std::runtime_error);
}

namespace {

/** A read-only, non-seekable stream buffer (tellg() reports -1). */
class PipeBuf : public std::streambuf
{
  public:
    explicit PipeBuf(std::string data) : data_(std::move(data))
    {
        setg(data_.data(), data_.data(), data_.data() + data_.size());
    }

  private:
    std::string data_;
};

} // namespace

TEST(Packed, RejectsAllocationBombOnNonSeekableStream)
{
    // Without tellg() the payload-presence check cannot run; the
    // chunked reader must still fail fast instead of zero-filling
    // terabytes before noticing the stream is empty.
    const int64_t dim = int64_t{1} << 20;
    PipeBuf buf(rawHeader(dim, dim, 1, (dim * dim + 1) / 2, dim * dim));
    std::istream in(&buf);
    ASSERT_EQ(in.tellg(), std::streampos(-1));
    EXPECT_THROW(readPacked(in), std::runtime_error);
}

TEST(Packed, UnpackValidatesConsistency)
{
    // unpack is public API: metadata shorter than rows x groupsPerRow
    // must throw, not index out of bounds in the sign-extend loop.
    PackedMantMatrix p;
    p.rows = 2;
    p.cols = 16;
    p.groupSize = 16;
    p.nibbles.assign(16, 0);
    p.scaleBits.assign(1, 0x3c00); // needs 2 groups, has 1
    p.typeBytes.assign(1, 0x80);
    EXPECT_THROW(unpack(p), std::invalid_argument);

    p.nibbles.assign(15, 0); // wrong nibble count
    p.scaleBits.assign(2, 0x3c00);
    p.typeBytes.assign(2, 0x80);
    EXPECT_THROW(unpack(p), std::invalid_argument);

    // rows * cols would overflow int64; must be rejected before the
    // product is ever formed.
    PackedMantMatrix huge;
    huge.rows = int64_t{1} << 32;
    huge.cols = int64_t{1} << 32;
    huge.groupSize = 1;
    EXPECT_THROW(unpack(huge), std::invalid_argument);
}

TEST(Packed, ZeroColumnStreamDoesNotCrash)
{
    // Degenerate but self-consistent geometry: must parse and unpack
    // (no groups, no codes) rather than divide by zero.
    std::stringstream ss(rawHeader(1, 0, 0, 0, 0));
    const PackedMantMatrix p = readPacked(ss);
    const MantQuantizedMatrix q = unpack(p);
    EXPECT_EQ(q.rows(), 1);
    EXPECT_EQ(q.cols(), 0);
    EXPECT_EQ(q.groupsPerRow(), 0);
}

TEST(Packed, FromPartsValidatesSizes)
{
    EXPECT_THROW(MantQuantizedMatrix::fromParts(
                     2, 16, 16, std::vector<int8_t>(31),
                     std::vector<MantGroupMeta>(2)),
                 std::invalid_argument);
    EXPECT_THROW(MantQuantizedMatrix::fromParts(
                     2, 16, 16, std::vector<int8_t>(32),
                     std::vector<MantGroupMeta>(3)),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------
// v2 tile-panel streams and the model container.

/** Assert `fn` throws PackedFormatError with exactly this message and
 *  stream offset (the satellite contract: every v2 error path names
 *  where in the stream validation failed). */
template <typename Fn>
void
expectFormatError(Fn &&fn, const std::string &msg, uint64_t off)
{
    try {
        fn();
        ADD_FAILURE() << "expected PackedFormatError: " << msg;
    } catch (const PackedFormatError &e) {
        EXPECT_EQ(std::string(e.what()),
                  msg + " (at offset " + std::to_string(off) + ")");
        EXPECT_EQ(e.offset(), off);
    }
}

std::string
v2StreamBytes(const MantPackedTiles &tiles)
{
    std::ostringstream os;
    writePackedTiles(os, tiles);
    return os.str();
}

/** 64-byte-aligned copy of a byte string (mapTileSection requires an
 *  aligned base, which std::string does not guarantee). */
struct AlignedBytes
{
    explicit AlignedBytes(const std::string &bytes)
        : p(static_cast<uint8_t *>(
              ::operator new(bytes.size() + 64, std::align_val_t{64}))),
          n(bytes.size())
    {
        std::memcpy(p, bytes.data(), bytes.size());
    }
    ~AlignedBytes() { ::operator delete(p, std::align_val_t{64}); }
    AlignedBytes(const AlignedBytes &) = delete;
    AlignedBytes &operator=(const AlignedBytes &) = delete;

    uint8_t *p;
    size_t n;
};

TEST(PackedV2, StreamRoundTripIsByteExact)
{
    const MantQuantizedMatrix q = sampleMatrix(420, 11, 50, 16);
    const MantPackedTiles tiles = MantPackedTiles::pack(q);
    std::stringstream ss(v2StreamBytes(tiles));
    const MantPackedTiles back = readPackedTiles(ss);

    const MantTilesView a = tiles.view();
    const MantTilesView b = back.view();
    ASSERT_EQ(a.codesBytes(), b.codesBytes());
    ASSERT_EQ(a.metaCount(), b.metaCount());
    EXPECT_EQ(std::memcmp(a.codesData(), b.codesData(),
                          static_cast<size_t>(a.codesBytes())),
              0);
    EXPECT_EQ(std::memcmp(a.scalesData(), b.scalesData(),
                          static_cast<size_t>(a.metaCount()) * 4),
              0);
    EXPECT_EQ(std::memcmp(a.coeffData(), b.coeffData(),
                          static_cast<size_t>(a.metaCount())),
              0);
    EXPECT_EQ(std::memcmp(a.isIntData(), b.isIntData(),
                          static_cast<size_t>(a.metaCount())),
              0);

    const Tensor x = test::gaussianTensor(Shape{3, 50}, 421);
    const auto qx = Int8QuantizedActivations::quantize(x, 16);
    const Tensor y1 = fusedGemmTiled(qx, tiles);
    const Tensor y2 = fusedGemmTiled(qx, back);
    EXPECT_TRUE(test::bytesEqual(y1.span(), y2.span()));
}

TEST(PackedV2, ReadPackedDecodesV2Streams)
{
    // The v1-era API reads a v2 stream transparently: same decoded
    // values, so old readers of the new format keep working.
    const MantQuantizedMatrix q = sampleMatrix(422, 7, 33, 16);
    std::stringstream ss(v2StreamBytes(MantPackedTiles::pack(q)));
    const MantQuantizedMatrix q2 = unpack(readPacked(ss));
    EXPECT_TRUE(test::bytesEqual(q.dequantize().span(),
                                 q2.dequantize().span()));
}

TEST(PackedV2, ReadPackedTilesAcceptsV1Streams)
{
    // And the tile API reads a v1 stream (repacking on the way in):
    // both formats remain readable through both entry points.
    const MantQuantizedMatrix q = sampleMatrix(423, 5, 48, 16);
    std::stringstream ss;
    writePacked(ss, pack(q));
    const MantPackedTiles tiles = readPackedTiles(ss);
    const MantPackedTiles direct = MantPackedTiles::pack(q);
    ASSERT_EQ(tiles.view().codesBytes(), direct.view().codesBytes());
    EXPECT_EQ(
        std::memcmp(tiles.view().codesData(),
                    direct.view().codesData(),
                    static_cast<size_t>(tiles.view().codesBytes())),
        0);
}

TEST(PackedV2, RejectsUnsupportedVersion)
{
    std::string bytes =
        v2StreamBytes(MantPackedTiles::pack(sampleMatrix(424, 2, 16)));
    bytes[4] = 3;
    expectFormatError(
        [&] {
            std::stringstream ss(bytes);
            readPackedTiles(ss);
        },
        "readPacked: unsupported version", 4);
}

TEST(PackedV2, HeaderFieldMismatchesNameTheirOffset)
{
    // The v2 tile header lives at stream offset 64; every derived
    // field must equal the geometry recomputed from (rows, cols,
    // groupSize), and each mismatch reports its own field offset.
    const std::string good =
        v2StreamBytes(MantPackedTiles::pack(sampleMatrix(425, 2, 16)));
    struct Case
    {
        size_t byte;       ///< byte to corrupt (+1)
        const char *msg;
        uint64_t offset;   ///< expected error offset
    };
    const Case cases[] = {
        {88, "readPacked: panel count mismatch", 88},
        {96, "readPacked: panel byte count mismatch", 96},
        {104, "readPacked: code byte count mismatch", 104},
        {112, "readPacked: tile meta count mismatch", 112},
        {120, "readPacked: nonzero reserved field", 120},
    };
    for (const Case &c : cases) {
        std::string bytes = good;
        bytes[c.byte] = static_cast<char>(bytes[c.byte] + 1);
        expectFormatError(
            [&] {
                std::stringstream ss(bytes);
                readPackedTiles(ss);
            },
            c.msg, c.offset);
    }

    std::string bad_rows = good;
    bad_rows[71] = '\x80'; // sign bit of the rows field
    expectFormatError(
        [&] {
            std::stringstream ss(bad_rows);
            readPackedTiles(ss);
        },
        "readPacked: implausible tile geometry", 64);

    std::string bad_group = good; // groupSize 16 -> 32 > cols: not
    bad_group[80] = 32;           // the normalized effective size
    expectFormatError(
        [&] {
            std::stringstream ss(bad_group);
            readPackedTiles(ss);
        },
        "readPacked: unnormalized group size", 80);
}

TEST(PackedV2, TruncatedPayloadNamesOffset)
{
    const std::string good =
        v2StreamBytes(MantPackedTiles::pack(sampleMatrix(426, 2, 16)));
    // Cut inside the code block: the payload-presence check fires at
    // the code array's start (stream offset 128, after the 64-byte
    // stream prefix and the 64-byte section header).
    expectFormatError(
        [&] {
            std::stringstream ss(good.substr(0, 132));
            readPackedTiles(ss);
        },
        "readPacked: truncated payload", 128);
}

TEST(PackedV2, NonSeekableTruncationStillFails)
{
    const std::string good =
        v2StreamBytes(MantPackedTiles::pack(sampleMatrix(427, 2, 16)));
    PipeBuf buf(good.substr(0, good.size() - 1));
    std::istream in(&buf);
    ASSERT_EQ(in.tellg(), std::streampos(-1));
    EXPECT_THROW(readPackedTiles(in), PackedFormatError);
}

// ---------------------------------------------------------------------
// mapTileSection: the zero-copy entry point.

std::string
tileSectionBytes(const MantPackedTiles &tiles)
{
    std::ostringstream os;
    writeTileSection(os, tiles.view());
    return os.str();
}

TEST(MapTileSection, RoundTripIsZeroCopy)
{
    const MantQuantizedMatrix q = sampleMatrix(430, 9, 40, 16);
    const MantPackedTiles tiles = MantPackedTiles::pack(q);
    const AlignedBytes buf(tileSectionBytes(tiles));
    ASSERT_EQ(buf.n, tileSectionSize(9, 40, 16));

    const MantTilesView v = mapTileSection(buf.p, buf.n);
    // Zero copy: the view's arrays point INTO the mapped bytes.
    EXPECT_EQ(v.codesData(), buf.p + 64);
    EXPECT_GE(reinterpret_cast<const uint8_t *>(v.scalesData()),
              buf.p);
    EXPECT_LT(v.isIntData(), buf.p + buf.n);

    const Tensor x = test::gaussianTensor(Shape{4, 40}, 431);
    const auto qx = Int8QuantizedActivations::quantize(x, 16);
    const Tensor y1 = fusedGemmTiled(qx, tiles);
    const Tensor y2 = fusedGemmTiled(qx, v);
    EXPECT_TRUE(test::bytesEqual(y1.span(), y2.span()));
}

TEST(MapTileSection, HostilePaths)
{
    const std::string bytes =
        tileSectionBytes(MantPackedTiles::pack(sampleMatrix(432, 2, 16)));
    const AlignedBytes buf(bytes);

    EXPECT_THROW(mapTileSection(nullptr, 64), std::invalid_argument);
    expectFormatError(
        [&] { mapTileSection(buf.p + 8, buf.n - 8, 4096); },
        "mapTileSection: section base not 64-byte aligned", 4096);
    expectFormatError([&] { mapTileSection(buf.p, 32, 256); },
                      "mapTileSection: truncated section header", 256);
    // Section smaller than its own header claims: payload runs off
    // the mapping (error offset = section base + codes offset).
    expectFormatError([&] { mapTileSection(buf.p, buf.n - 1, 128); },
                      "mapTileSection: section payload out of bounds",
                      128 + 64);
    // The shared header validator runs here too, with the
    // mapTileSection prefix and section-absolute offsets.
    AlignedBytes corrupt(bytes);
    corrupt.p[24] = static_cast<uint8_t>(corrupt.p[24] + 1);
    expectFormatError(
        [&] { mapTileSection(corrupt.p, corrupt.n, 640); },
        "mapTileSection: panel count mismatch", 640 + 24);
}

// ---------------------------------------------------------------------
// Model container TOC.

/** Two-section container: "alpha" (F32, 64 bytes of 'a') at offset
 *  192 and "beta" (Meta, 32 bytes of 'b') at offset 256. */
std::string
sampleContainer()
{
    ModelContainerWriter w;
    w.add("alpha", ModelSectionKind::F32, 64, [](std::ostream &os) {
        const std::string a(64, 'a');
        os.write(a.data(), 64);
    });
    w.add("beta", ModelSectionKind::Meta, 32, [](std::ostream &os) {
        const std::string b(32, 'b');
        os.write(b.data(), 32);
    });
    std::ostringstream os;
    w.write(os);
    return os.str();
}

TEST(ModelContainer, WriterLaysOutAlignedSections)
{
    const std::string s = sampleContainer();
    ASSERT_EQ(s.size(), 288u);
    EXPECT_EQ(std::memcmp(s.data(), "MANTMDL\0", 8), 0);

    const auto toc = parseModelContainer(s.data(), s.size());
    ASSERT_EQ(toc.size(), 2u);
    EXPECT_EQ(toc[0].name, "alpha");
    EXPECT_EQ(toc[0].kind, ModelSectionKind::F32);
    EXPECT_EQ(toc[0].offset, 192u);
    EXPECT_EQ(toc[0].size, 64u);
    EXPECT_EQ(toc[1].name, "beta");
    EXPECT_EQ(toc[1].kind, ModelSectionKind::Meta);
    EXPECT_EQ(toc[1].offset, 256u);
    EXPECT_EQ(toc[1].size, 32u);
    EXPECT_EQ(s[192], 'a');
    EXPECT_EQ(s[255], 'a');
    EXPECT_EQ(s[256], 'b');
}

TEST(ModelContainer, HostileHeaderPaths)
{
    const std::string s = sampleContainer();
    const auto parse = [](const std::string &bytes) {
        return parseModelContainer(bytes.data(), bytes.size());
    };

    EXPECT_THROW(parseModelContainer(nullptr, 0),
                 std::invalid_argument);
    expectFormatError([&] { parse(s.substr(0, 32)); },
                      "model container: truncated header", 0);

    std::string bad = s;
    bad[0] = 'X';
    expectFormatError([&] { parse(bad); },
                      "model container: bad magic", 0);

    bad = s;
    bad[8] = 9;
    expectFormatError([&] { parse(bad); },
                      "model container: unsupported version", 8);

    bad = s;
    bad[14] = '\x7f'; // section count -> ~2 billion
    expectFormatError([&] { parse(bad); },
                      "model container: implausible section count",
                      12);

    bad = s;
    bad[20] = 1;
    expectFormatError(
        [&] { parse(bad); },
        "model container: nonzero reserved header bytes", 16);

    // Header says two TOC entries but the bytes end before them.
    expectFormatError([&] { parse(s.substr(0, 100)); },
                      "model container: truncated TOC", 64);
}

TEST(ModelContainer, HostileTocEntryPaths)
{
    const std::string s = sampleContainer();
    const auto parse = [](const std::string &bytes) {
        return parseModelContainer(bytes.data(), bytes.size());
    };

    std::string bad = s; // entry 0 starts at 64
    for (size_t i = 64; i < 104; ++i)
        bad[i] = 'x'; // all 40 name bytes non-zero
    expectFormatError(
        [&] { parse(bad); },
        "model container: unterminated section name", 64);

    bad = s;
    bad[64] = '\0'; // "alpha" -> empty (trailing "lpha" still there)
    expectFormatError([&] { parse(bad); },
                      "model container: empty section name", 64);

    bad = s;
    bad[64 + 10] = 'z'; // non-zero byte after the terminator
    expectFormatError(
        [&] { parse(bad); },
        "model container: garbage after section name", 64);

    bad = s;
    bad[64 + 40] = 7; // kind field
    expectFormatError([&] { parse(bad); },
                      "model container: unknown section kind",
                      64 + 40);

    bad = s;
    bad[64 + 44] = 1; // reserved entry field
    expectFormatError(
        [&] { parse(bad); },
        "model container: nonzero reserved entry field", 64 + 44);

    bad = s;
    bad[64 + 48] = static_cast<char>(193); // alpha offset 192 -> 193
    expectFormatError(
        [&] { parse(bad); },
        "model container: misaligned section offset", 64 + 48);

    bad = s;
    bad[64 + 48] = static_cast<char>(128); // aligned but inside TOC
    expectFormatError([&] { parse(bad); },
                      "model container: section overlaps TOC",
                      64 + 48);

    bad = s;
    bad[64 + 49] = 2; // alpha offset 192 -> 704: past the end
    expectFormatError([&] { parse(bad); },
                      "model container: section out of bounds",
                      64 + 48);
}

TEST(ModelContainer, DetectsDuplicatesAndOverlaps)
{
    const std::string s = sampleContainer();
    const auto parse = [](const std::string &bytes) {
        return parseModelContainer(bytes.data(), bytes.size());
    };

    std::string bad = s; // rename entry 1 (at 128) to "alpha"
    std::memcpy(bad.data() + 128, "alpha", 5);
    bad[133] = '\0';
    expectFormatError([&] { parse(bad); },
                      "model container: duplicate section name", 128);

    bad = s;
    bad[64 + 56] = 96; // alpha's size 64 -> 96: runs into beta @256
    expectFormatError([&] { parse(bad); },
                      "model container: overlapping sections",
                      128 + 48);
}

TEST(ModelContainer, WriterRejectsBadSections)
{
    const auto emit = [](std::ostream &) {};
    ModelContainerWriter w;
    EXPECT_THROW(w.add("", ModelSectionKind::F32, 0, emit),
                 std::invalid_argument);
    EXPECT_THROW(w.add(std::string(40, 'n'), ModelSectionKind::F32, 0,
                       emit),
                 std::invalid_argument);
    EXPECT_THROW(w.add(std::string("a\0b", 3), ModelSectionKind::F32,
                       0, emit),
                 std::invalid_argument);
    EXPECT_THROW(w.add("ok", static_cast<ModelSectionKind>(9), 0,
                       emit),
                 std::invalid_argument);
    EXPECT_THROW(w.add("ok", ModelSectionKind::F32, 0,
                       ModelContainerWriter::EmitFn{}),
                 std::invalid_argument);
    w.add("ok", ModelSectionKind::F32, 0, emit);
    EXPECT_THROW(w.add("ok", ModelSectionKind::Meta, 0, emit),
                 std::invalid_argument);
}

TEST(ModelContainer, WriterVerifiesEmittedByteCount)
{
    ModelContainerWriter w;
    w.add("short", ModelSectionKind::F32, 16, [](std::ostream &os) {
        os.write("8bytes!!", 8); // declared 16, writes 8
    });
    std::ostringstream os;
    EXPECT_THROW(w.write(os), std::runtime_error);
}

} // namespace
} // namespace mant
