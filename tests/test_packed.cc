#include <cstring>
#include <sstream>

#include <gtest/gtest.h>

#include "core/packed.h"
#include "tensor/distribution.h"
#include "test_util.h"

namespace mant {
namespace {

MantQuantizedMatrix
sampleMatrix(uint64_t seed, int64_t rows = 16, int64_t cols = 128,
             int64_t group = 64)
{
    DistProfile p;
    Rng rng(seed);
    const Tensor w = genWeightMatrix(rng, rows, cols, p);
    return MantQuantizedMatrix::quantize(w, group);
}

TEST(Packed, RoundTripExact)
{
    const MantQuantizedMatrix q = sampleMatrix(401);
    const PackedMantMatrix p = pack(q);
    const MantQuantizedMatrix q2 = unpack(p);

    const Tensor a = q.dequantize();
    const Tensor b = q2.dequantize();
    EXPECT_EQ(test::maxDiff(a.span(), b.span()), 0.0);
}

TEST(Packed, RoundTripPreservesMetadata)
{
    const MantQuantizedMatrix q = sampleMatrix(402);
    const MantQuantizedMatrix q2 = unpack(pack(q));
    for (int64_t r = 0; r < q.rows(); ++r) {
        for (int64_t g = 0; g < q.groupsPerRow(); ++g) {
            EXPECT_EQ(q.meta(r, g).a, q2.meta(r, g).a);
            EXPECT_EQ(q.meta(r, g).isInt, q2.meta(r, g).isInt);
            EXPECT_FLOAT_EQ(q.meta(r, g).scale, q2.meta(r, g).scale);
        }
    }
}

TEST(Packed, StorageMatchesPaperArithmetic)
{
    // 4 bits/element + 24 bits per 64-element group = 4.375 bits/elem.
    const MantQuantizedMatrix q = sampleMatrix(403, 8, 128, 64);
    const PackedMantMatrix p = pack(q);
    EXPECT_NEAR(p.bitsPerElement(), 4.375, 1e-9);
    EXPECT_EQ(p.storageBytes(), 8 * 128 / 2 + 8 * 2 * 3);
}

TEST(Packed, OddElementCount)
{
    const MantQuantizedMatrix q = sampleMatrix(404, 3, 33, 16);
    const MantQuantizedMatrix q2 = unpack(pack(q));
    EXPECT_EQ(test::maxDiff(q.dequantize().span(),
                            q2.dequantize().span()),
              0.0);
}

TEST(Packed, FusedGemmEquivalentAfterRoundTrip)
{
    const MantQuantizedMatrix q = sampleMatrix(405);
    const MantQuantizedMatrix q2 = unpack(pack(q));
    const Tensor x = test::gaussianTensor(Shape{4, 128}, 406);
    const auto qx = Int8QuantizedActivations::quantize(x, 64);
    const Tensor y1 = fusedGemm(qx, q);
    const Tensor y2 = fusedGemm(qx, q2);
    EXPECT_EQ(test::maxDiff(y1.span(), y2.span()), 0.0);
}

TEST(Packed, SerializeDeserialize)
{
    const MantQuantizedMatrix q = sampleMatrix(407);
    const PackedMantMatrix p = pack(q);

    std::stringstream ss;
    writePacked(ss, p);
    const PackedMantMatrix p2 = readPacked(ss);

    EXPECT_EQ(p2.rows, p.rows);
    EXPECT_EQ(p2.cols, p.cols);
    EXPECT_EQ(p2.groupSize, p.groupSize);
    EXPECT_EQ(p2.nibbles, p.nibbles);
    EXPECT_EQ(p2.scaleBits, p.scaleBits);
    EXPECT_EQ(p2.typeBytes, p.typeBytes);
}

TEST(Packed, RejectsBadMagic)
{
    std::stringstream ss;
    ss << "NOPE-this-is-not-a-mant-blob";
    EXPECT_THROW(readPacked(ss), std::runtime_error);
}

TEST(Packed, RejectsTruncatedStream)
{
    const MantQuantizedMatrix q = sampleMatrix(408);
    std::stringstream ss;
    writePacked(ss, pack(q));
    const std::string full = ss.str();
    std::stringstream cut(full.substr(0, full.size() / 2));
    EXPECT_THROW(readPacked(cut), std::runtime_error);
}

TEST(Packed, RejectsVersionMismatch)
{
    const MantQuantizedMatrix q = sampleMatrix(409, 2, 16, 16);
    std::stringstream ss;
    writePacked(ss, pack(q));
    std::string bytes = ss.str();
    bytes[4] = 99; // corrupt the version field
    std::stringstream bad(bytes);
    EXPECT_THROW(readPacked(bad), std::runtime_error);
}

TEST(Packed, FromPartsValidatesSizes)
{
    EXPECT_THROW(MantQuantizedMatrix::fromParts(
                     2, 16, 16, std::vector<int8_t>(31),
                     std::vector<MantGroupMeta>(2)),
                 std::invalid_argument);
    EXPECT_THROW(MantQuantizedMatrix::fromParts(
                     2, 16, 16, std::vector<int8_t>(32),
                     std::vector<MantGroupMeta>(3)),
                 std::invalid_argument);
}

} // namespace
} // namespace mant
