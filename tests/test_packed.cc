#include <cmath>
#include <cstring>
#include <sstream>

#include <gtest/gtest.h>

#include "core/packed.h"
#include "tensor/distribution.h"
#include "test_util.h"

namespace mant {
namespace {

MantQuantizedMatrix
sampleMatrix(uint64_t seed, int64_t rows = 16, int64_t cols = 128,
             int64_t group = 64)
{
    DistProfile p;
    Rng rng(seed);
    const Tensor w = genWeightMatrix(rng, rows, cols, p);
    return MantQuantizedMatrix::quantize(w, group);
}

TEST(Packed, RoundTripExact)
{
    const MantQuantizedMatrix q = sampleMatrix(401);
    const PackedMantMatrix p = pack(q);
    const MantQuantizedMatrix q2 = unpack(p);

    const Tensor a = q.dequantize();
    const Tensor b = q2.dequantize();
    EXPECT_EQ(test::maxDiff(a.span(), b.span()), 0.0);
}

TEST(Packed, RoundTripPreservesMetadata)
{
    const MantQuantizedMatrix q = sampleMatrix(402);
    const MantQuantizedMatrix q2 = unpack(pack(q));
    for (int64_t r = 0; r < q.rows(); ++r) {
        for (int64_t g = 0; g < q.groupsPerRow(); ++g) {
            EXPECT_EQ(q.meta(r, g).a, q2.meta(r, g).a);
            EXPECT_EQ(q.meta(r, g).isInt, q2.meta(r, g).isInt);
            EXPECT_FLOAT_EQ(q.meta(r, g).scale, q2.meta(r, g).scale);
        }
    }
}

TEST(Packed, StorageMatchesPaperArithmetic)
{
    // 4 bits/element + 24 bits per 64-element group = 4.375 bits/elem.
    const MantQuantizedMatrix q = sampleMatrix(403, 8, 128, 64);
    const PackedMantMatrix p = pack(q);
    EXPECT_NEAR(p.bitsPerElement(), 4.375, 1e-9);
    EXPECT_EQ(p.storageBytes(), 8 * 128 / 2 + 8 * 2 * 3);
}

TEST(Packed, OddElementCount)
{
    const MantQuantizedMatrix q = sampleMatrix(404, 3, 33, 16);
    const MantQuantizedMatrix q2 = unpack(pack(q));
    EXPECT_EQ(test::maxDiff(q.dequantize().span(),
                            q2.dequantize().span()),
              0.0);
}

TEST(Packed, FusedGemmEquivalentAfterRoundTrip)
{
    const MantQuantizedMatrix q = sampleMatrix(405);
    const MantQuantizedMatrix q2 = unpack(pack(q));
    const Tensor x = test::gaussianTensor(Shape{4, 128}, 406);
    const auto qx = Int8QuantizedActivations::quantize(x, 64);
    const Tensor y1 = fusedGemm(qx, q);
    const Tensor y2 = fusedGemm(qx, q2);
    EXPECT_EQ(test::maxDiff(y1.span(), y2.span()), 0.0);
}

TEST(Packed, SerializeDeserialize)
{
    const MantQuantizedMatrix q = sampleMatrix(407);
    const PackedMantMatrix p = pack(q);

    std::stringstream ss;
    writePacked(ss, p);
    const PackedMantMatrix p2 = readPacked(ss);

    EXPECT_EQ(p2.rows, p.rows);
    EXPECT_EQ(p2.cols, p.cols);
    EXPECT_EQ(p2.groupSize, p.groupSize);
    EXPECT_EQ(p2.nibbles, p.nibbles);
    EXPECT_EQ(p2.scaleBits, p.scaleBits);
    EXPECT_EQ(p2.typeBytes, p.typeBytes);
}

TEST(Packed, RejectsBadMagic)
{
    std::stringstream ss;
    ss << "NOPE-this-is-not-a-mant-blob";
    EXPECT_THROW(readPacked(ss), std::runtime_error);
}

TEST(Packed, RejectsTruncatedStream)
{
    const MantQuantizedMatrix q = sampleMatrix(408);
    std::stringstream ss;
    writePacked(ss, pack(q));
    const std::string full = ss.str();
    std::stringstream cut(full.substr(0, full.size() / 2));
    EXPECT_THROW(readPacked(cut), std::runtime_error);
}

TEST(Packed, RejectsVersionMismatch)
{
    const MantQuantizedMatrix q = sampleMatrix(409, 2, 16, 16);
    std::stringstream ss;
    writePacked(ss, pack(q));
    std::string bytes = ss.str();
    bytes[4] = 99; // corrupt the version field
    std::stringstream bad(bytes);
    EXPECT_THROW(readPacked(bad), std::runtime_error);
}

TEST(Packed, BitsPerElementEmptyMatrixIsZero)
{
    const PackedMantMatrix empty;
    EXPECT_EQ(empty.bitsPerElement(), 0.0);
    EXPECT_FALSE(std::isnan(empty.bitsPerElement()));
    EXPECT_EQ(empty.storageBytes(), 0);
}

TEST(Packed, RejectsEmptyStream)
{
    std::stringstream ss;
    EXPECT_THROW(readPacked(ss), std::runtime_error);
}

TEST(Packed, RejectsTruncatedHeader)
{
    // Valid magic but the version field is cut short: exercises the
    // readScalar truncation guard rather than the payload check.
    std::stringstream ss;
    ss << "MANT" << '\x01';
    EXPECT_THROW(readPacked(ss), std::runtime_error);
}

TEST(Packed, RejectsNibbleCountMismatch)
{
    const MantQuantizedMatrix q = sampleMatrix(410, 2, 16, 16);
    std::stringstream ss;
    writePacked(ss, pack(q));
    std::string bytes = ss.str();
    bytes[32] = static_cast<char>(bytes[32] + 1); // n_nibbles field
    std::stringstream bad(bytes);
    EXPECT_THROW(readPacked(bad), std::runtime_error);
}

TEST(Packed, RejectsGroupCountMismatch)
{
    // A stream whose group count disagrees with rows x groupsPerRow
    // must be rejected at the header, not crash later in unpack().
    const MantQuantizedMatrix q = sampleMatrix(411, 2, 32, 16);
    std::stringstream ss;
    writePacked(ss, pack(q));
    std::string bytes = ss.str();
    bytes[40] = static_cast<char>(bytes[40] + 1); // n_groups field
    std::stringstream bad(bytes);
    EXPECT_THROW(readPacked(bad), std::runtime_error);
}

TEST(Packed, RejectsImplausibleHeader)
{
    const MantQuantizedMatrix q = sampleMatrix(412, 2, 16, 16);
    std::stringstream ss;
    writePacked(ss, pack(q));
    std::string bytes = ss.str();
    bytes[15] = '\x80'; // sign bit of the rows field: rows < 0
    std::stringstream bad(bytes);
    EXPECT_THROW(readPacked(bad), std::runtime_error);
}

namespace {

// Build a raw header: magic + version + the given geometry/counts.
std::string
rawHeader(int64_t rows, int64_t cols, int64_t groupSize,
          uint64_t nNibbles, uint64_t nGroups)
{
    std::stringstream ss;
    ss.write("MANT", 4);
    const uint32_t version = 1;
    ss.write(reinterpret_cast<const char *>(&version), 4);
    ss.write(reinterpret_cast<const char *>(&rows), 8);
    ss.write(reinterpret_cast<const char *>(&cols), 8);
    ss.write(reinterpret_cast<const char *>(&groupSize), 8);
    ss.write(reinterpret_cast<const char *>(&nNibbles), 8);
    ss.write(reinterpret_cast<const char *>(&nGroups), 8);
    return ss.str();
}

} // namespace

TEST(Packed, RejectsOverflowingDimensions)
{
    // rows * cols would wrap int64 to 0 and sail past every count
    // check; the per-dimension bound must reject it first.
    std::stringstream bad(
        rawHeader(int64_t{1} << 33, int64_t{1} << 31, 1, 0, 0));
    EXPECT_THROW(readPacked(bad), std::runtime_error);
}

TEST(Packed, AcceptsTallSkinnyHeader)
{
    // 2^21 x 1 is a legitimate geometry (writePacked accepts it), so
    // the plausibility check must let it through; with no payload the
    // failure has to be the payload check, not the dimension cap.
    std::stringstream ss(rawHeader(int64_t{1} << 21, 1, 1,
                                   int64_t{1} << 20,
                                   int64_t{1} << 21));
    try {
        readPacked(ss);
        FAIL() << "expected runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "readPacked: truncated payload");
    }
}

TEST(Packed, RejectsAllocationBombHeader)
{
    // Self-consistent counts naming ~2.5 TiB of buffers with no
    // payload behind them: must throw before allocating anything.
    const int64_t dim = int64_t{1} << 20;
    std::stringstream ss(rawHeader(dim, dim, 1,
                                   (dim * dim + 1) / 2,
                                   dim * dim));
    EXPECT_THROW(readPacked(ss), std::runtime_error);
}

namespace {

/** A read-only, non-seekable stream buffer (tellg() reports -1). */
class PipeBuf : public std::streambuf
{
  public:
    explicit PipeBuf(std::string data) : data_(std::move(data))
    {
        setg(data_.data(), data_.data(), data_.data() + data_.size());
    }

  private:
    std::string data_;
};

} // namespace

TEST(Packed, RejectsAllocationBombOnNonSeekableStream)
{
    // Without tellg() the payload-presence check cannot run; the
    // chunked reader must still fail fast instead of zero-filling
    // terabytes before noticing the stream is empty.
    const int64_t dim = int64_t{1} << 20;
    PipeBuf buf(rawHeader(dim, dim, 1, (dim * dim + 1) / 2, dim * dim));
    std::istream in(&buf);
    ASSERT_EQ(in.tellg(), std::streampos(-1));
    EXPECT_THROW(readPacked(in), std::runtime_error);
}

TEST(Packed, UnpackValidatesConsistency)
{
    // unpack is public API: metadata shorter than rows x groupsPerRow
    // must throw, not index out of bounds in the sign-extend loop.
    PackedMantMatrix p;
    p.rows = 2;
    p.cols = 16;
    p.groupSize = 16;
    p.nibbles.assign(16, 0);
    p.scaleBits.assign(1, 0x3c00); // needs 2 groups, has 1
    p.typeBytes.assign(1, 0x80);
    EXPECT_THROW(unpack(p), std::invalid_argument);

    p.nibbles.assign(15, 0); // wrong nibble count
    p.scaleBits.assign(2, 0x3c00);
    p.typeBytes.assign(2, 0x80);
    EXPECT_THROW(unpack(p), std::invalid_argument);

    // rows * cols would overflow int64; must be rejected before the
    // product is ever formed.
    PackedMantMatrix huge;
    huge.rows = int64_t{1} << 32;
    huge.cols = int64_t{1} << 32;
    huge.groupSize = 1;
    EXPECT_THROW(unpack(huge), std::invalid_argument);
}

TEST(Packed, ZeroColumnStreamDoesNotCrash)
{
    // Degenerate but self-consistent geometry: must parse and unpack
    // (no groups, no codes) rather than divide by zero.
    std::stringstream ss(rawHeader(1, 0, 0, 0, 0));
    const PackedMantMatrix p = readPacked(ss);
    const MantQuantizedMatrix q = unpack(p);
    EXPECT_EQ(q.rows(), 1);
    EXPECT_EQ(q.cols(), 0);
    EXPECT_EQ(q.groupsPerRow(), 0);
}

TEST(Packed, FromPartsValidatesSizes)
{
    EXPECT_THROW(MantQuantizedMatrix::fromParts(
                     2, 16, 16, std::vector<int8_t>(31),
                     std::vector<MantGroupMeta>(2)),
                 std::invalid_argument);
    EXPECT_THROW(MantQuantizedMatrix::fromParts(
                     2, 16, 16, std::vector<int8_t>(32),
                     std::vector<MantGroupMeta>(3)),
                 std::invalid_argument);
}

} // namespace
} // namespace mant
