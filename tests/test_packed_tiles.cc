/**
 * @file
 * MantPackedTiles and fusedGemmTiled tests: pack→unpack round-trips
 * over ragged shapes, bit-exact equality of the tiled GEMM against
 * the reference fused path across SIMD backends × thread counts, and
 * the QuantizedLinear prepacked forward path (including scratch
 * reuse).
 */

#include <cstring>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/packed_tiles.h"
#include "core/parallel.h"
#include "core/simd.h"
#include "model/quantized_linear.h"
#include "tensor/distribution.h"
#include "test_util.h"

namespace mant {
namespace {

using test::bytesEqual;
using test::withPath;

/** Weight matrix with realistic mixed INT/MANT group selections. */
MantQuantizedMatrix
quantizedWeights(int64_t n, int64_t k, int64_t g, uint64_t seed)
{
    DistProfile p;
    Rng rng(seed);
    const Tensor w = genWeightMatrix(rng, n, k, p);
    return MantQuantizedMatrix::quantize(w, g);
}

/** Hand-assembled matrix guaranteeing both group types appear. */
MantQuantizedMatrix
mixedTypeMatrix(int64_t rows, int64_t cols, int64_t g)
{
    const int64_t groups = groupsPerRowFor(cols, g);
    std::vector<int8_t> codes(static_cast<size_t>(rows * cols));
    std::vector<MantGroupMeta> meta(
        static_cast<size_t>(rows * groups));
    const int64_t gsize = effectiveGroupSize(cols, g);
    for (int64_t r = 0; r < rows; ++r) {
        for (int64_t gi = 0; gi < groups; ++gi) {
            MantGroupMeta &m =
                meta[static_cast<size_t>(r * groups + gi)];
            m.isInt = (r + gi) % 2 == 0;
            m.a = m.isInt ? 0 : static_cast<uint8_t>(17 + (gi % 3));
            m.scale = 0.5f + 0.25f * static_cast<float>(gi % 4);
            const int64_t k0 = gi * gsize;
            const int64_t len = std::min(gsize, cols - k0);
            for (int64_t i = 0; i < len; ++i) {
                int8_t &c = codes[static_cast<size_t>(r * cols + k0 + i)];
                if (m.isInt)
                    c = static_cast<int8_t>((i * 3 + r) % 15 - 7);
                else
                    c = static_cast<int8_t>((i * 5 + r + gi) % 16);
            }
        }
    }
    return MantQuantizedMatrix::fromParts(rows, cols, g,
                                          std::move(codes),
                                          std::move(meta));
}

class TileShapeSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{};

TEST_P(TileShapeSweep, PackUnpackRoundTripsByteExact)
{
    const auto [n, k, g] = GetParam();
    const MantQuantizedMatrix qw = mixedTypeMatrix(n, k, g);
    const MantPackedTiles tiles = MantPackedTiles::pack(qw);

    ASSERT_EQ(tiles.rows(), qw.rows());
    ASSERT_EQ(tiles.cols(), qw.cols());
    ASSERT_EQ(tiles.groupSize(), qw.groupSize());
    ASSERT_EQ(tiles.groupsPerRow(), qw.groupsPerRow());
    ASSERT_EQ(tiles.panels(),
              (qw.rows() + kTilePanelCols - 1) / kTilePanelCols);

    for (int64_t r = 0; r < qw.rows(); ++r) {
        const std::vector<int8_t> back = tiles.unpackRowCodes(r);
        const auto orig = qw.rowCodes(r);
        ASSERT_EQ(back.size(), orig.size());
        EXPECT_EQ(std::memcmp(back.data(), orig.data(), back.size()),
                  0)
            << "row " << r;
        for (int64_t gi = 0; gi < qw.groupsPerRow(); ++gi) {
            const MantGroupMeta a = tiles.metaAt(r, gi);
            const MantGroupMeta &b = qw.meta(r, gi);
            EXPECT_EQ(a.scale, b.scale);
            EXPECT_EQ(a.a, b.a);
            EXPECT_EQ(a.isInt, b.isInt);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    RaggedShapes, TileShapeSweep,
    ::testing::Values(std::tuple{1, 64, 64},   // single row
                      std::tuple{5, 40, -1},   // partial panel, row=group
                      std::tuple{8, 96, 40},   // ragged tail group
                      std::tuple{13, 7, 1},    // groups of one
                      std::tuple{33, 200, 64}, // several panels, ragged
                      std::tuple{16, 64, 128})); // group > K

class TiledGemmSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>>
{};

TEST_P(TiledGemmSweep, BitIdenticalToReferenceFusedGemm)
{
    const auto [m, k, n, g] = GetParam();
    const MantQuantizedMatrix qw = quantizedWeights(
        n, k, g, static_cast<uint64_t>(m * 977 + k * 31 + n * 7 + g));
    const Tensor x = test::gaussianTensor(
        Shape{m, k}, static_cast<uint64_t>(g * 13 + m));
    const auto qx = Int8QuantizedActivations::quantize(x, g);
    const MantPackedTiles tiles = MantPackedTiles::pack(qw);

    const Tensor ref = fusedGemm(qx, qw);
    const Tensor tiled = fusedGemmTiled(qx, tiles);
    ASSERT_EQ(tiled.shape(), ref.shape());
    EXPECT_TRUE(bytesEqual(tiled.span(), ref.span()));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TiledGemmSweep,
    ::testing::Values(std::tuple{1, 64, 1, 64},    // decode, one cell
                      std::tuple{1, 256, 33, 64},  // decode, ragged N
                      std::tuple{3, 96, 8, 40},    // ragged tail group
                      std::tuple{4, 200, 20, 64},  // non-multiple K
                      std::tuple{2, 64, 4, -1},    // one group per row
                      std::tuple{6, 64, 12, 1},    // groups of one
                      std::tuple{16, 128, 40, 32}, // multi-panel
                      std::tuple{70, 128, 9, 64})); // spans M blocks

TEST(TiledGemm, BitIdenticalAcrossBackendsAndThreads)
{
    const MantQuantizedMatrix qw = quantizedWeights(40, 192, 64, 321);
    const Tensor x = test::gaussianTensor(Shape{9, 192}, 322);
    const auto qx = Int8QuantizedActivations::quantize(x, 64);
    const MantPackedTiles tiles = MantPackedTiles::pack(qw);

    const Tensor baseline = withPath(SimdPath::Scalar, 1, [&] {
        return fusedGemmTiled(qx, tiles);
    });
    const Tensor ref = withPath(SimdPath::Scalar, 1, [&] {
        return fusedGemm(qx, qw);
    });
    EXPECT_TRUE(bytesEqual(baseline.span(), ref.span()));

    for (SimdPath path : {SimdPath::Scalar, bestSimdPath()}) {
        for (int threads : {1, 8}) {
            const Tensor out = withPath(path, threads, [&] {
                return fusedGemmTiled(qx, tiles);
            });
            EXPECT_TRUE(bytesEqual(out.span(), baseline.span()))
                << simdPathName(path) << " threads=" << threads;
        }
    }
}

TEST(TiledGemm, MixedTypePanelsMatchReference)
{
    // Panels whose 8 columns mix INT and MANT groups at the same g:
    // the combine loop must pick the right lane formula per column.
    const MantQuantizedMatrix qw = mixedTypeMatrix(20, 96, 32);
    const MantPackedTiles tiles = MantPackedTiles::pack(qw);
    const Tensor x = test::gaussianTensor(Shape{5, 96}, 5151);
    const auto qx = Int8QuantizedActivations::quantize(x, 32);
    const Tensor ref = fusedGemm(qx, qw);
    const Tensor tiled = fusedGemmTiled(qx, tiles);
    EXPECT_TRUE(bytesEqual(tiled.span(), ref.span()));
}

TEST(TiledGemm, GroupLayoutMismatchThrows)
{
    const MantQuantizedMatrix qw = quantizedWeights(8, 128, 64, 99);
    const MantPackedTiles tiles = MantPackedTiles::pack(qw);
    const Tensor x = test::gaussianTensor(Shape{2, 128}, 100);
    const auto qx = Int8QuantizedActivations::quantize(x, 32);
    EXPECT_THROW(fusedGemmTiled(qx, tiles), std::invalid_argument);
}

TEST(TiledGemm, ReductionMismatchThrows)
{
    const MantQuantizedMatrix qw = quantizedWeights(8, 128, 64, 101);
    const MantPackedTiles tiles = MantPackedTiles::pack(qw);
    const Tensor x = test::gaussianTensor(Shape{2, 64}, 102);
    const auto qx = Int8QuantizedActivations::quantize(x, 64);
    EXPECT_THROW(fusedGemmTiled(qx, tiles), std::invalid_argument);
}

TEST(TiledGemm, IntoReusesMatchingStorage)
{
    const MantQuantizedMatrix qw = quantizedWeights(16, 64, 64, 103);
    const MantPackedTiles tiles = MantPackedTiles::pack(qw);
    Tensor out;
    for (uint64_t seed = 0; seed < 3; ++seed) {
        const Tensor x =
            test::gaussianTensor(Shape{1, 64}, 200 + seed);
        const auto qx = Int8QuantizedActivations::quantize(x, 64);
        const float *before = out.data();
        fusedGemmTiledInto(qx, tiles, out);
        EXPECT_TRUE(bytesEqual(out.span(),
                               fusedGemm(qx, qw).span()));
        if (seed > 0) {
            EXPECT_EQ(out.data(), before) << "storage was reallocated";
        }
    }
}

TEST(PackedTiles, HostileIntCodeThrows)
{
    // -8 is representable in a two's-complement nibble but not in
    // sign-magnitude; pack() must reject rather than corrupt.
    std::vector<int8_t> codes(64, 0);
    codes[3] = -8;
    std::vector<MantGroupMeta> meta(1);
    meta[0].isInt = true;
    meta[0].scale = 1.0f;
    const MantQuantizedMatrix qw = MantQuantizedMatrix::fromParts(
        1, 64, 64, std::move(codes), std::move(meta));
    EXPECT_THROW(MantPackedTiles::pack(qw), std::invalid_argument);
}

TEST(PackedTiles, HostileMantCodeHighBitsIgnored)
{
    // MANT nibbles must mask to the low 4 bits exactly like the
    // reference fusedDotMant does for one-byte codes.
    std::vector<int8_t> codes(64);
    for (int i = 0; i < 64; ++i)
        codes[static_cast<size_t>(i)] =
            static_cast<int8_t>(0x70 | (i % 16));
    std::vector<MantGroupMeta> meta(1);
    meta[0].isInt = false;
    meta[0].a = 17;
    meta[0].scale = 0.25f;
    const MantQuantizedMatrix qw = MantQuantizedMatrix::fromParts(
        1, 64, 64, std::move(codes), std::move(meta));
    const MantPackedTiles tiles = MantPackedTiles::pack(qw);
    const Tensor x = test::gaussianTensor(Shape{2, 64}, 404);
    const auto qx = Int8QuantizedActivations::quantize(x, 64);
    EXPECT_TRUE(bytesEqual(fusedGemmTiled(qx, tiles).span(),
                           fusedGemm(qx, qw).span()));
}

TEST(QuantizedLinearTiles, FusedForwardMatchesReferenceBitExact)
{
    const Tensor w = test::gaussianTensor(Shape{24, 128}, 77, 0.02);
    const QuantSetup setup = mantW4A8Setup(64);
    const QuantizedLinear lin(w, setup);
    ASSERT_TRUE(lin.hasFusedPath());

    for (int64_t m : {int64_t{1}, int64_t{6}}) {
        const Tensor x = test::gaussianTensor(
            Shape{m, 128}, static_cast<uint64_t>(500 + m));
        const Tensor fused = lin.forwardFused(x);
        const Tensor ref = lin.forwardFusedReference(x);
        EXPECT_TRUE(bytesEqual(fused.span(), ref.span()))
            << "m=" << m;
    }
}

TEST(QuantizedLinearTiles, ScratchReuseIsStableAcrossCalls)
{
    // Decode-loop shape: repeated M=1 calls must keep producing the
    // same answer as a fresh computation (pooled scratch is fully
    // reinitialized each call) without reallocating the output.
    const Tensor w = test::gaussianTensor(Shape{16, 96}, 78, 0.02);
    const QuantizedLinear lin(w, mantW4A8Setup(32));
    Tensor out;
    for (uint64_t step = 0; step < 5; ++step) {
        const Tensor x =
            test::gaussianTensor(Shape{1, 96}, 600 + step);
        const float *before = out.data();
        lin.forwardFusedInto(x, out);
        EXPECT_TRUE(bytesEqual(
            out.span(), lin.forwardFusedReference(x).span()));
        if (step > 0) {
            EXPECT_EQ(out.data(), before);
        }
    }
}

TEST(QuantizedLinearTiles, PrequantizedSharedActivationsMatch)
{
    // The Q/K/V pattern: one activation quantization shared by
    // several linears equals quantizing per linear.
    const QuantSetup setup = mantW4A8Setup(64);
    const Tensor wq = test::gaussianTensor(Shape{16, 64}, 81, 0.02);
    const Tensor wk = test::gaussianTensor(Shape{16, 64}, 82, 0.02);
    const QuantizedLinear lq(wq, setup), lk(wk, setup);
    const Tensor x = test::gaussianTensor(Shape{3, 64}, 83);

    Int8QuantizedActivations qx;
    qx.assign(x, lq.codes().groupSize());
    Tensor outQ, outK;
    lq.forwardFusedInto(qx, outQ);
    lk.forwardFusedInto(qx, outK);
    EXPECT_TRUE(bytesEqual(outQ.span(), lq.forwardFused(x).span()));
    EXPECT_TRUE(bytesEqual(outK.span(), lk.forwardFused(x).span()));
}

} // namespace
} // namespace mant
