/**
 * @file
 * Tests for the parallel execution subsystem: parallelFor semantics
 * (chunk geometry, nesting, exceptions, MANT_THREADS resolution) and
 * the determinism guarantee — every parallelized kernel must produce
 * bit-identical results at any thread count.
 */

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <set>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/fused_gemm.h"
#include "core/parallel.h"
#include "model/calibration.h"
#include "model/model_profiles.h"
#include "model/transformer.h"
#include "quant/fixed_formats.h"
#include "quant/group_quantizer.h"
#include "test_util.h"

namespace mant {
namespace {

/** Saves/restores MANT_THREADS and clears any programmatic override. */
class ThreadEnvGuard
{
  public:
    ThreadEnvGuard()
    {
        const char *v = std::getenv("MANT_THREADS");
        if (v) {
            had_ = true;
            saved_ = v;
        }
        setMaxThreads(0);
    }

    ~ThreadEnvGuard()
    {
        if (had_)
            setenv("MANT_THREADS", saved_.c_str(), 1);
        else
            unsetenv("MANT_THREADS");
        setMaxThreads(0);
    }

  private:
    bool had_ = false;
    std::string saved_;
};

/** Run fn under a pinned thread budget, then clear the override. */
template <typename Fn>
auto
withThreads(int n, Fn &&fn)
{
    setMaxThreads(n);
    auto restore = [] { setMaxThreads(0); };
    try {
        auto result = fn();
        restore();
        return result;
    } catch (...) {
        restore();
        throw;
    }
}

bool
bytesEqual(std::span<const float> a, std::span<const float> b)
{
    return a.size() == b.size() &&
           std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

void
expectStatsIdentical(const QuantStats &a, const QuantStats &b)
{
    // Bit-exact doubles: the determinism contract is exact equality,
    // not tolerance.
    EXPECT_EQ(a.mse, b.mse);
    EXPECT_EQ(a.nmse, b.nmse);
    EXPECT_EQ(a.unitCount, b.unitCount);
    EXPECT_EQ(a.metaBits, b.metaBits);
    EXPECT_EQ(a.formatCounts, b.formatCounts);
}

TEST(ParallelFor, EmptyRangeNeverInvokes)
{
    ThreadEnvGuard env;
    std::atomic<int> calls{0};
    parallelFor(0, 0, 4, [&](int64_t, int64_t, int64_t) { ++calls; });
    parallelFor(5, 5, 4, [&](int64_t, int64_t, int64_t) { ++calls; });
    parallelFor(7, 3, 4, [&](int64_t, int64_t, int64_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
    EXPECT_EQ(parallelChunkCount(0, 0, 4), 0);
    EXPECT_EQ(parallelChunkCount(7, 3, 4), 0);
}

TEST(ParallelFor, SingletonRangeRunsInline)
{
    ThreadEnvGuard env;
    const auto caller = std::this_thread::get_id();
    std::vector<std::tuple<int64_t, int64_t, int64_t>> seen;
    parallelFor(3, 4, 16, [&](int64_t b, int64_t e, int64_t c) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        seen.emplace_back(b, e, c);
    });
    ASSERT_EQ(seen.size(), 1u);
    const std::tuple<int64_t, int64_t, int64_t> expected{3, 4, 0};
    EXPECT_EQ(seen[0], expected);
}

TEST(ParallelFor, ChunkGeometryIsFixedAndUnbalancedTailIsShort)
{
    ThreadEnvGuard env;
    EXPECT_EQ(parallelChunkCount(0, 10, 4), 3);
    // Thread count must not affect the chunk geometry.
    for (int threads : {1, 2, 8}) {
        auto chunks = withThreads(threads, [&] {
            std::mutex mu;
            std::vector<std::tuple<int64_t, int64_t, int64_t>> seen;
            parallelFor(0, 10, 4, [&](int64_t b, int64_t e, int64_t c) {
                std::lock_guard<std::mutex> lk(mu);
                seen.emplace_back(b, e, c);
            });
            std::sort(seen.begin(), seen.end());
            return seen;
        });
        ASSERT_EQ(chunks.size(), 3u) << "threads=" << threads;
        const std::vector<std::tuple<int64_t, int64_t, int64_t>>
            expected{{0, 4, 0}, {4, 8, 1}, {8, 10, 2}};
        EXPECT_EQ(chunks, expected) << "threads=" << threads;
    }
}

TEST(ParallelFor, EveryIndexVisitedExactlyOnce)
{
    ThreadEnvGuard env;
    constexpr int64_t kN = 1000;
    auto visits = withThreads(8, [&] {
        std::vector<std::atomic<int>> v(kN);
        parallelFor(0, kN, 7, [&](int64_t b, int64_t e, int64_t) {
            for (int64_t i = b; i < e; ++i)
                ++v[static_cast<size_t>(i)];
        });
        std::vector<int> out;
        for (auto &x : v)
            out.push_back(x.load());
        return out;
    });
    for (int64_t i = 0; i < kN; ++i)
        ASSERT_EQ(visits[static_cast<size_t>(i)], 1) << "index " << i;
}

TEST(ParallelFor, GrainBelowOneIsClampedToOne)
{
    ThreadEnvGuard env;
    EXPECT_EQ(parallelChunkCount(0, 5, 0), 5);
    EXPECT_EQ(parallelChunkCount(0, 5, -3), 5);
    std::atomic<int> calls{0};
    parallelFor(0, 5, 0, [&](int64_t b, int64_t e, int64_t) {
        EXPECT_EQ(e, b + 1);
        ++calls;
    });
    EXPECT_EQ(calls.load(), 5);
}

TEST(ParallelFor, NestedCallsRunInlineWithoutDeadlock)
{
    ThreadEnvGuard env;
    auto sums = withThreads(4, [&] {
        std::vector<int64_t> outer(8, 0);
        parallelFor(0, 8, 1, [&](int64_t b, int64_t e, int64_t) {
            for (int64_t i = b; i < e; ++i) {
                const auto inner_thread = std::this_thread::get_id();
                int64_t sum = 0;
                parallelFor(0, 100, 9,
                            [&](int64_t ib, int64_t ie, int64_t) {
                                // Nested bodies must stay on the same
                                // thread (inline execution).
                                EXPECT_EQ(std::this_thread::get_id(),
                                          inner_thread);
                                for (int64_t j = ib; j < ie; ++j)
                                    sum += j;
                            });
                outer[static_cast<size_t>(i)] = sum;
            }
        });
        return outer;
    });
    for (int64_t s : sums)
        EXPECT_EQ(s, 99 * 100 / 2);
}

TEST(ParallelFor, ExceptionPropagatesToCaller)
{
    ThreadEnvGuard env;
    for (int threads : {1, 4}) {
        setMaxThreads(threads);
        EXPECT_THROW(
            parallelFor(0, 64, 1,
                        [&](int64_t b, int64_t, int64_t) {
                            if (b == 13)
                                throw std::runtime_error("chunk 13");
                        }),
            std::runtime_error)
            << "threads=" << threads;
    }
    setMaxThreads(0);
    // The pool must stay usable after a failed job.
    std::atomic<int64_t> sum{0};
    setMaxThreads(4);
    parallelFor(0, 100, 3, [&](int64_t b, int64_t e, int64_t) {
        for (int64_t i = b; i < e; ++i)
            sum += i;
    });
    setMaxThreads(0);
    EXPECT_EQ(sum.load(), 99 * 100 / 2);
}

TEST(ParallelFor, UsesAtMostMaxThreads)
{
    ThreadEnvGuard env;
    auto ids = withThreads(3, [&] {
        std::mutex mu;
        std::set<std::thread::id> seen;
        parallelFor(0, 256, 1, [&](int64_t, int64_t, int64_t) {
            std::lock_guard<std::mutex> lk(mu);
            seen.insert(std::this_thread::get_id());
        });
        return seen;
    });
    EXPECT_LE(ids.size(), 3u);
    EXPECT_GE(ids.size(), 1u);
}

TEST(MaxThreads, EnvAndOverrideResolution)
{
    ThreadEnvGuard env;

    unsetenv("MANT_THREADS");
    EXPECT_EQ(maxThreads(), hardwareThreads());

    setenv("MANT_THREADS", "3", 1);
    EXPECT_EQ(maxThreads(), 3);

    // 0, negative and garbage all fall back to the hardware default.
    setenv("MANT_THREADS", "0", 1);
    EXPECT_EQ(maxThreads(), hardwareThreads());
    setenv("MANT_THREADS", "-4", 1);
    EXPECT_EQ(maxThreads(), hardwareThreads());
    setenv("MANT_THREADS", "garbage", 1);
    EXPECT_EQ(maxThreads(), hardwareThreads());
    setenv("MANT_THREADS", "2x", 1);
    EXPECT_EQ(maxThreads(), hardwareThreads());
    setenv("MANT_THREADS", "", 1);
    EXPECT_EQ(maxThreads(), hardwareThreads());

    // Programmatic override beats the environment; clearing it
    // falls back to the environment again.
    setenv("MANT_THREADS", "3", 1);
    setMaxThreads(5);
    EXPECT_EQ(maxThreads(), 5);
    setMaxThreads(0);
    EXPECT_EQ(maxThreads(), 3);

    // Absurd values are capped, not honored literally.
    setenv("MANT_THREADS", "99999999", 1);
    EXPECT_LE(maxThreads(), 256);
}

TEST(ParallelFor, EnvVarControlsWorkerCount)
{
    ThreadEnvGuard env;
    setenv("MANT_THREADS", "1", 1);
    const auto caller = std::this_thread::get_id();
    parallelFor(0, 128, 1, [&](int64_t, int64_t, int64_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
    });
}

/* ------------------------------------------------------------------ */
/* Determinism: parallel kernels are bit-identical at any thread count */
/* ------------------------------------------------------------------ */

QuantConfig
groupCfg(int64_t g)
{
    QuantConfig cfg;
    cfg.gran = Granularity::PerGroup;
    cfg.groupSize = g;
    return cfg;
}

TEST(Determinism, QuantDequantFixedBitIdentical)
{
    ThreadEnvGuard env;
    // 200 columns: ragged tail groups exercise the unit indexing.
    const Tensor t = test::gaussianTensor(Shape{16, 200}, 401);
    auto run = [&](int threads) {
        return withThreads(threads, [&] {
            QuantStats stats;
            Tensor out =
                quantDequantFixed(t, int4Format(), groupCfg(64), &stats);
            return std::make_pair(std::move(out), stats);
        });
    };
    const auto [ref, refStats] = run(1);
    for (int threads : {2, 8}) {
        const auto [out, stats] = run(threads);
        EXPECT_TRUE(bytesEqual(ref.span(), out.span()))
            << "threads=" << threads;
        expectStatsIdentical(refStats, stats);
    }
}

TEST(Determinism, QuantDequantAdaptiveBitIdentical)
{
    ThreadEnvGuard env;
    const Tensor t = test::gaussianTensor(Shape{16, 200}, 402);
    auto run = [&](int threads) {
        return withThreads(threads, [&] {
            QuantStats stats;
            Tensor out = quantDequantAdaptive(t, antTypeSet(),
                                              groupCfg(64), &stats);
            return std::make_pair(std::move(out), stats);
        });
    };
    const auto [ref, refStats] = run(1);
    ASSERT_EQ(refStats.formatCounts.size(), antTypeSet().size());
    for (int threads : {2, 8}) {
        const auto [out, stats] = run(threads);
        EXPECT_TRUE(bytesEqual(ref.span(), out.span()))
            << "threads=" << threads;
        expectStatsIdentical(refStats, stats);
    }
}

TEST(Determinism, QuantDequantKMeansBitIdentical)
{
    ThreadEnvGuard env;
    const Tensor t = test::gaussianTensor(Shape{8, 200}, 403);
    auto run = [&](int threads) {
        return withThreads(threads, [&] {
            QuantStats stats;
            Tensor out = quantDequantKMeans(t, 16, groupCfg(64), &stats);
            return std::make_pair(std::move(out), stats);
        });
    };
    const auto [ref, refStats] = run(1);
    for (int threads : {2, 8}) {
        const auto [out, stats] = run(threads);
        EXPECT_TRUE(bytesEqual(ref.span(), out.span()))
            << "threads=" << threads;
        expectStatsIdentical(refStats, stats);
    }
}

TEST(Determinism, FusedGemmPipelineBitIdentical)
{
    ThreadEnvGuard env;
    const Tensor w = test::gaussianTensor(Shape{24, 200}, 404, 0.02);
    const Tensor x = test::gaussianTensor(Shape{5, 200}, 405);
    auto run = [&](int threads) {
        return withThreads(threads, [&] {
            const MantQuantizedMatrix qw =
                MantQuantizedMatrix::quantize(w, 64);
            const auto qx = Int8QuantizedActivations::quantize(x, 64);
            return std::make_pair(fusedGemm(qx, qw), qw.dequantize());
        });
    };
    const auto [refOut, refDeq] = run(1);
    for (int threads : {2, 8}) {
        const auto [out, deq] = run(threads);
        EXPECT_TRUE(bytesEqual(refOut.span(), out.span()))
            << "threads=" << threads;
        EXPECT_TRUE(bytesEqual(refDeq.span(), deq.span()))
            << "threads=" << threads;
    }
}

TEST(Determinism, MantEncodeCodesBitIdentical)
{
    ThreadEnvGuard env;
    const Tensor w = test::gaussianTensor(Shape{32, 128}, 406, 0.02);
    auto codes = [&](int threads) {
        return withThreads(threads, [&] {
            const MantQuantizedMatrix q =
                MantQuantizedMatrix::quantize(w, 32);
            std::vector<int8_t> all;
            for (int64_t r = 0; r < q.rows(); ++r) {
                const auto row = q.rowCodes(r);
                all.insert(all.end(), row.begin(), row.end());
            }
            return all;
        });
    };
    const auto ref = codes(1);
    EXPECT_EQ(ref, codes(2));
    EXPECT_EQ(ref, codes(8));
}

TEST(Determinism, CalibrationAccumulateBitIdentical)
{
    ThreadEnvGuard env;
    const Tensor x = test::gaussianTensor(Shape{40, 700}, 407);
    auto power = [&](int threads) {
        return withThreads(threads, [&] {
            ModelCalibration calib;
            calib.accumulate(0, LinearSlot::AttnIn, x);
            calib.accumulate(0, LinearSlot::AttnIn, x);
            calib.finalize();
            const auto p = calib.power(0, LinearSlot::AttnIn);
            return std::vector<double>(p.begin(), p.end());
        });
    };
    const auto ref = power(1);
    ASSERT_EQ(ref.size(), 700u);
    // Exact double equality: per-column accumulation order is fixed.
    EXPECT_EQ(ref, power(2));
    EXPECT_EQ(ref, power(8));
}

TEST(Determinism, TransformerLogitsBitIdentical)
{
    ThreadEnvGuard env;
    const ModelProfile profile = test::tinyProfile();
    const ModelWeights weights = ModelWeights::generate(profile, 128);
    std::vector<int32_t> toks;
    Rng rng(408);
    for (int i = 0; i < 12; ++i)
        toks.push_back(static_cast<int32_t>(rng.uniformInt(128)));

    auto logits = [&](int threads) {
        return withThreads(threads, [&] {
            Transformer m(weights, mantW4A8Setup(32));
            return m.prefill(toks);
        });
    };
    const Tensor ref = logits(1);
    for (int threads : {2, 8}) {
        const Tensor out = logits(threads);
        EXPECT_TRUE(bytesEqual(ref.span(), out.span()))
            << "threads=" << threads;
    }
}

// --- TSan-targeted stress tests -------------------------------------
//
// The tsan preset runs this binary with MANT_THREADS=8, so these tests
// deliberately race the pool's worker spawn-up, ticket handout, job
// swap, and caller fallback paths. They assert only exactly-once
// visitation (TSan supplies the race detection); pool teardown itself
// is exercised at process exit, where TSan verifies the worker joins
// in Pool::~Pool against every access these tests made.

TEST(ParallelStress, ReuseAcrossThreadBudgetChanges)
{
    ThreadEnvGuard env;
    // Alternating budgets makes each job spawn new workers mid-life
    // and strands surplus workers that must lose the ticket race
    // (Job::slots) without touching the new job's state.
    std::vector<int64_t> perChunk(
        static_cast<size_t>(parallelChunkCount(0, 4096, 16)));
    for (int round = 0; round < 64; ++round) {
        const int budget = 1 + (round % 8);
        setMaxThreads(budget);
        std::fill(perChunk.begin(), perChunk.end(), int64_t{0});
        std::atomic<int64_t> visited{0};
        parallelFor(0, 4096, 16,
                    [&](int64_t b, int64_t e, int64_t c) {
                        perChunk[static_cast<size_t>(c)] += e - b;
                        visited.fetch_add(e - b,
                                          std::memory_order_relaxed);
                    });
        ASSERT_EQ(visited.load(), 4096) << "round=" << round;
        for (int64_t n : perChunk)
            ASSERT_EQ(n, 16);
    }
    setMaxThreads(0);
}

TEST(ParallelStress, ConcurrentTopLevelCallersStayExactlyOnce)
{
    ThreadEnvGuard env;
    // Several user threads contend for the pool at once: one wins
    // callerMu and runs pooled, the rest must fall back inline. Every
    // call still visits every index exactly once.
    constexpr int kCallers = 4;
    constexpr int kRounds = 16;
    constexpr int64_t kRange = 2048;
    setMaxThreads(8);
    std::vector<std::atomic<int64_t>> hits(
        static_cast<size_t>(kCallers));
    std::vector<std::thread> callers;
    callers.reserve(kCallers);
    for (int t = 0; t < kCallers; ++t) {
        callers.emplace_back([&, t] {
            for (int r = 0; r < kRounds; ++r) {
                parallelFor(0, kRange, 32,
                            [&](int64_t b, int64_t e, int64_t) {
                                hits[static_cast<size_t>(t)].fetch_add(
                                    e - b, std::memory_order_relaxed);
                            });
            }
        });
    }
    for (std::thread &t : callers)
        t.join();
    setMaxThreads(0);
    for (int t = 0; t < kCallers; ++t)
        EXPECT_EQ(hits[static_cast<size_t>(t)].load(),
                  kRounds * kRange)
            << "caller=" << t;
}

TEST(ParallelStress, NestedCallsUnderContentionRunInline)
{
    ThreadEnvGuard env;
    // Nested parallelFor from racing chunk bodies: the inner call must
    // see tlsInParallelRegion and run inline on the same thread, with
    // no pool re-entry, at every thread budget.
    for (int budget : {2, 8}) {
        setMaxThreads(budget);
        std::atomic<int64_t> inner{0};
        parallelFor(0, 64, 1, [&](int64_t, int64_t, int64_t) {
            const auto outerThread = std::this_thread::get_id();
            parallelFor(0, 32, 4,
                        [&](int64_t b, int64_t e, int64_t) {
                            EXPECT_EQ(std::this_thread::get_id(),
                                      outerThread);
                            inner.fetch_add(
                                e - b, std::memory_order_relaxed);
                        });
        });
        EXPECT_EQ(inner.load(), 64 * 32) << "budget=" << budget;
    }
    setMaxThreads(0);
}

TEST(ParallelStress, BudgetGrowthSpawnsWorkersForExitTeardown)
{
    ThreadEnvGuard env;
    // Ratchet the budget up to the test cap so the pool holds its
    // maximum worker population when the process exits — Pool::~Pool's
    // shutdown broadcast + joins then run under TSan with the largest
    // possible worker set.
    for (int budget : {2, 4, 8}) {
        setMaxThreads(budget);
        std::atomic<int64_t> sum{0};
        parallelFor(0, 1024, 8,
                    [&](int64_t b, int64_t e, int64_t) {
                        for (int64_t i = b; i < e; ++i)
                            sum.fetch_add(i,
                                          std::memory_order_relaxed);
                    });
        EXPECT_EQ(sum.load(), 1023 * 1024 / 2) << "budget=" << budget;
    }
    setMaxThreads(0);
}

} // namespace
} // namespace mant
