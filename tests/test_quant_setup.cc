#include <gtest/gtest.h>

#include "model/quant_setup.h"

namespace mant {
namespace {

TEST(QuantSetup, Fp16Defaults)
{
    const QuantSetup s = fp16Setup();
    EXPECT_EQ(s.weight, WeightMethod::Fp16);
    EXPECT_EQ(s.act, ActMethod::None);
    EXPECT_EQ(s.kv, KvMethod::Fp16);
    EXPECT_FALSE(s.quantizeAttention);
    EXPECT_EQ(s.label, "FP16");
}

TEST(QuantSetup, W4A4Factory)
{
    const QuantSetup s = w4a4Setup(WeightMethod::Olive, ActMethod::Olive,
                                   Granularity::PerChannel, 0);
    EXPECT_EQ(s.weightBits, 4);
    EXPECT_EQ(s.actBits, 4);
    EXPECT_EQ(s.weightGran, Granularity::PerChannel);
    EXPECT_EQ(s.label, "OliVe W4A4");
}

TEST(QuantSetup, W8A8Factory)
{
    const QuantSetup s = w8a8Setup(WeightMethod::Tender, ActMethod::Tender,
                                   Granularity::PerChannel, 0);
    EXPECT_EQ(s.weightBits, 8);
    EXPECT_EQ(s.actBits, 8);
    EXPECT_EQ(s.label, "Tender W8A8");
}

TEST(QuantSetup, MantW4A8)
{
    const QuantSetup s = mantW4A8Setup(32);
    EXPECT_EQ(s.weight, WeightMethod::Mant);
    EXPECT_EQ(s.weightBits, 4);
    EXPECT_EQ(s.act, ActMethod::Int);
    EXPECT_EQ(s.actBits, 8);
    EXPECT_EQ(s.weightGroup, 32);
    EXPECT_EQ(s.actGroup, 32);
    EXPECT_EQ(s.kv, KvMethod::Fp16);
}

TEST(QuantSetup, MantFusedRoutesThroughTiles)
{
    const QuantSetup s = mantFusedSetup(32);
    EXPECT_EQ(s.weight, WeightMethod::Mant);
    EXPECT_EQ(s.weightBits, 4);
    EXPECT_TRUE(s.fusedInference);
    EXPECT_EQ(s.label, "MANT W4A8 fused");
    EXPECT_FALSE(mantW4A8Setup(32).fusedInference);
}

TEST(QuantSetup, MantFullAddsKvAndAttention)
{
    const QuantSetup s = mantFullSetup(64);
    EXPECT_EQ(s.kv, KvMethod::Mant4);
    EXPECT_EQ(s.kvGroup, 64);
    EXPECT_TRUE(s.quantizeAttention);
    EXPECT_EQ(s.label, "MANT W4A8 KV4");
}

TEST(QuantSetup, LabelsCoverAllMethods)
{
    for (WeightMethod m :
         {WeightMethod::Int, WeightMethod::Ant, WeightMethod::Olive,
          WeightMethod::Tender, WeightMethod::Mant, WeightMethod::KMeans,
          WeightMethod::Nf4, WeightMethod::Mxfp4}) {
        const QuantSetup s =
            w4a4Setup(m, ActMethod::Int, Granularity::PerGroup, 64);
        EXPECT_FALSE(s.label.empty());
        EXPECT_NE(s.label.find("W4A4"), std::string::npos);
    }
}

} // namespace
} // namespace mant
