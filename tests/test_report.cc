#include <sstream>

#include <gtest/gtest.h>

#include "sim/report.h"

namespace mant {
namespace {

TEST(TablePrinter, AlignsColumns)
{
    TablePrinter t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer-name", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    // Header, separator, two rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
    // All lines share the same width (aligned pipes).
    std::istringstream is(out);
    std::string line;
    size_t width = 0;
    while (std::getline(is, line)) {
        if (width == 0)
            width = line.size();
        EXPECT_EQ(line.size(), width) << line;
    }
}

TEST(TablePrinter, PadsShortRows)
{
    TablePrinter t({"a", "b", "c"});
    t.addRow({"only-one"});
    std::ostringstream os;
    EXPECT_NO_THROW(t.print(os));
    EXPECT_NE(os.str().find("only-one"), std::string::npos);
}

TEST(Fmt, FixedPrecision)
{
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(3.14159, 4), "3.1416");
    EXPECT_EQ(fmt(0.0), "0.00");
}

TEST(Fmt, ScientificForExtremes)
{
    EXPECT_NE(fmt(1.5e7).find("e"), std::string::npos);
    EXPECT_NE(fmt(1.5e-5).find("e"), std::string::npos);
}

TEST(Fmt, SpeedupSuffix)
{
    EXPECT_EQ(fmtX(2.5), "2.50x");
}

TEST(Banner, ContainsTitle)
{
    std::ostringstream os;
    banner(os, "Hello");
    EXPECT_NE(os.str().find("=== Hello ==="), std::string::npos);
}

} // namespace
} // namespace mant
