#include <cmath>

#include <gtest/gtest.h>

#include "tensor/rng.h"

namespace mant {
namespace {

TEST(Rng, DeterministicFromSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRange)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIntBounds)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.uniformInt(17), 17u);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(13);
    const int n = 200000;
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sum_sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, GaussianMeanStddev)
{
    Rng rng(17);
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(5.0, 2.0);
    EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, LaplaceVariance)
{
    // Var(Laplace(b)) = 2 b^2.
    Rng rng(19);
    const double b = 1.5;
    const int n = 200000;
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double v = rng.laplace(b);
        sum += v;
        sum_sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sum_sq / n, 2.0 * b * b, 0.15);
}

TEST(Rng, StudentTHeavyTail)
{
    // t(3) produces |x| > 5 far more often than a Gaussian does.
    Rng rng(23);
    const int n = 100000;
    int t_tail = 0, g_tail = 0;
    for (int i = 0; i < n; ++i) {
        if (std::fabs(rng.studentT(3.0)) > 5.0)
            ++t_tail;
        if (std::fabs(rng.gaussian()) > 5.0)
            ++g_tail;
    }
    EXPECT_GT(t_tail, 10 * (g_tail + 1));
}

TEST(Rng, LogNormalPositive)
{
    Rng rng(29);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GT(rng.logNormal(-2.0, 1.0), 0.0);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(31);
    const int n = 100000;
    int hits = 0;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkIndependentStreams)
{
    Rng root(41);
    Rng a = root.fork(1);
    Rng b = root.fork(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, ReseedResets)
{
    Rng rng(55);
    const uint64_t first = rng.next();
    rng.next();
    rng.reseed(55);
    EXPECT_EQ(rng.next(), first);
}

} // namespace
} // namespace mant
