/**
 * @file
 * Serving-engine determinism and generation-path regression suite.
 *
 * The load-bearing claim: N-stream batched decode produces
 * byte-identical token sequences to N serial single-stream runs, at
 * every MANT_SIMD × MANT_THREADS setting, with streams joining and
 * retiring mid-batch. Plus regression tests for the generation-path
 * fixes (greedyGenerate count clamp, forced-decoding token-id
 * validation) and the HeadKvCache reset/bounds contract.
 */

#include <algorithm>
#include <iterator>
#include <limits>
#include <stdexcept>
#include <string>
#include <tuple>
#include <utility>

#include <gtest/gtest.h>

#include "core/variance_selector.h"
#include "model/generation.h"
#include "model/kv_cache.h"
#include "model/model_profiles.h"
#include "serve/serving_engine.h"
#include "test_util.h"

namespace mant {
namespace {

int32_t
argmax(std::span<const float> row)
{
    return static_cast<int32_t>(
        std::max_element(row.begin(), row.end()) - row.begin());
}

std::vector<int32_t>
promptFor(int stream, int len, int vocab)
{
    Rng rng(1000 + static_cast<uint64_t>(stream));
    std::vector<int32_t> p(static_cast<size_t>(len));
    for (auto &t : p)
        t = static_cast<int32_t>(
            rng.uniformInt(static_cast<uint64_t>(vocab)));
    return p;
}

/** The pre-engine single-stream loop: prefill + decodeStep feedback on
 *  the model's default stream — the serial oracle the batched engine
 *  must reproduce byte for byte. */
std::vector<int32_t>
serialGreedy(Transformer &m, std::span<const int32_t> prompt,
             int64_t numTokens, int32_t stopToken = -1)
{
    std::vector<int32_t> out;
    if (numTokens <= 0 || prompt.empty())
        return out;
    const Tensor logits = m.prefill(prompt);
    int32_t next = argmax(logits.row(logits.shape().dim(0) - 1));
    out.push_back(next);
    while (static_cast<int64_t>(out.size()) < numTokens &&
           !(stopToken >= 0 && next == stopToken)) {
        next = argmax(m.decodeStep(next));
        out.push_back(next);
    }
    return out;
}

struct ServingCase
{
    std::vector<int32_t> prompt;
    int64_t maxNewTokens;
};

/** Ragged request mix: prompt lengths and budgets all differ, and with
 *  maxStreams below the request count, streams join and retire
 *  mid-batch. */
std::vector<ServingCase>
raggedCases(int vocab)
{
    std::vector<ServingCase> cases;
    const int64_t budgets[] = {5, 1, 9, 3, 12, 7, 2};
    for (int s = 0; s < 7; ++s)
        cases.push_back(
            {promptFor(s, 4 + 3 * (s % 4), vocab), budgets[s]});
    return cases;
}

std::vector<std::vector<int32_t>>
runEngine(Transformer &model, const std::vector<ServingCase> &cases,
          int64_t maxStreams)
{
    ServingEngine engine(model,
                         ServingConfig{.maxStreams = maxStreams});
    std::vector<RequestId> ids;
    for (const ServingCase &c : cases) {
        GenRequest req;
        req.prompt = c.prompt;
        req.maxNewTokens = c.maxNewTokens;
        ids.push_back(engine.submit(std::move(req)));
    }
    engine.run();
    std::vector<std::vector<int32_t>> outs;
    for (RequestId id : ids) {
        EXPECT_EQ(engine.state(id), RequestState::Done);
        outs.push_back(engine.output(id));
    }
    return outs;
}

class ServingTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        profile_ = test::tinyProfile();
        weights_ = ModelWeights::generate(profile_, 128);
    }

    ModelProfile profile_;
    ModelWeights weights_;
};

/** Batched == serial, per stream, byte-identical, swept over
 *  SIMD backend × thread count, with ragged joins/retirements. */
void
expectBatchedMatchesSerial(const ModelWeights &weights,
                           const QuantSetup &setup, int vocab)
{
    const std::vector<ServingCase> cases = raggedCases(vocab);
    const SimdPath paths[] = {SimdPath::Scalar, SimdPath::Auto};
    const int threads[] = {1, 8};

    std::vector<std::vector<int32_t>> first;
    for (const SimdPath path : paths) {
        for (const int nthreads : threads) {
            auto outs = test::withPath(path, nthreads, [&] {
                Transformer model(weights, setup);
                std::vector<std::vector<int32_t>> serial;
                for (const ServingCase &c : cases)
                    serial.push_back(serialGreedy(
                        model, c.prompt, c.maxNewTokens));
                auto batched = runEngine(model, cases, 3);
                return std::pair(std::move(serial),
                                 std::move(batched));
            });
            for (size_t s = 0; s < cases.size(); ++s) {
                EXPECT_EQ(outs.first[s], outs.second[s])
                    << "stream " << s << " diverged from serial at "
                    << simdPathName(path) << "/threads="
                    << nthreads;
            }
            // The determinism contract also promises identical
            // tokens across every backend × thread setting.
            if (first.empty())
                first = outs.second;
            else
                EXPECT_EQ(first, outs.second)
                    << "outputs changed under " << simdPathName(path)
                    << "/threads=" << nthreads;
        }
    }
}

TEST_F(ServingTest, BatchedMatchesSerialFusedPath)
{
    expectBatchedMatchesSerial(weights_, mantFusedSetup(64),
                               profile_.simDims.vocab);
}

TEST_F(ServingTest, BatchedMatchesSerialFloatPath)
{
    expectBatchedMatchesSerial(weights_, fp16Setup(),
                               profile_.simDims.vocab);
}

TEST_F(ServingTest, BatchedMatchesSerialFullQuantSetup)
{
    // MANT4 KV + quantized attention: the per-stream real-time cache
    // machinery runs inside the batch.
    expectBatchedMatchesSerial(weights_, mantFullSetup(),
                               profile_.simDims.vocab);
}

TEST_F(ServingTest, SchedulerStatsAndStates)
{
    Transformer model(weights_, mantFusedSetup(64));
    ServingEngine engine(model, ServingConfig{.maxStreams = 3});
    const auto cases = raggedCases(profile_.simDims.vocab);
    std::vector<RequestId> ids;
    for (const auto &c : cases) {
        GenRequest req;
        req.prompt = c.prompt;
        req.maxNewTokens = c.maxNewTokens;
        ids.push_back(engine.submit(std::move(req)));
    }
    EXPECT_EQ(engine.queuedRequests(), 7);
    EXPECT_EQ(engine.activeStreams(), 0);
    EXPECT_EQ(engine.state(ids[0]), RequestState::Queued);

    // First step: three admissions (prefill + first token each), one
    // batched pass. Budget-1 requests may already have retired.
    EXPECT_TRUE(engine.step());
    EXPECT_LE(engine.activeStreams(), 3);
    EXPECT_GE(engine.stats().prefills, 3);
    EXPECT_EQ(engine.stats().decodeBatches, 1);

    engine.run();
    EXPECT_TRUE(engine.idle());
    const ServingEngine::Stats &st = engine.stats();
    EXPECT_EQ(st.prefills, 7);
    EXPECT_LE(st.peakBatch, 3);
    EXPECT_GE(st.peakBatch, 1);
    int64_t total = 0;
    for (RequestId id : ids) {
        EXPECT_EQ(engine.state(id), RequestState::Done);
        total += static_cast<int64_t>(engine.output(id).size());
        EXPECT_EQ(static_cast<int64_t>(engine.output(id).size()),
                  cases[static_cast<size_t>(id)].maxNewTokens);
    }
    // Every token beyond each request's first came from a batched
    // decode pass.
    EXPECT_EQ(st.decodedTokens, total - 7);
    EXPECT_THROW(engine.state(99), std::out_of_range);
    EXPECT_THROW(engine.output(-1), std::out_of_range);
}

TEST_F(ServingTest, StopTokenRetiresEarly)
{
    Transformer model(weights_, fp16Setup());
    const auto prompt = promptFor(0, 8, profile_.simDims.vocab);
    const auto full = serialGreedy(model, prompt, 10);
    ASSERT_GE(full.size(), 3u);

    ServingEngine engine(model, ServingConfig{.maxStreams = 2});
    GenRequest req;
    req.prompt = prompt;
    req.maxNewTokens = 10;
    req.stopToken = full[1];
    const RequestId id = engine.submit(std::move(req));
    engine.run();
    const auto &out = engine.output(id);
    // Generation halts at the first occurrence of the stop token,
    // which is kept in the output.
    const auto stop_at = std::find(full.begin(), full.end(), full[1]);
    const size_t expect_len =
        static_cast<size_t>(stop_at - full.begin()) + 1;
    ASSERT_EQ(out.size(), expect_len);
    EXPECT_TRUE(std::equal(out.begin(), out.end(), full.begin()));
    EXPECT_EQ(out.back(), full[1]);
}

TEST_F(ServingTest, DegenerateRequestsCompleteImmediately)
{
    Transformer model(weights_, fp16Setup());
    ServingEngine engine(model);
    GenRequest empty_prompt;
    empty_prompt.maxNewTokens = 4;
    GenRequest zero_budget;
    zero_budget.prompt = promptFor(0, 4, profile_.simDims.vocab);
    zero_budget.maxNewTokens = 0;
    GenRequest negative_budget = zero_budget;
    negative_budget.maxNewTokens = -3;

    const RequestId a = engine.submit(std::move(empty_prompt));
    const RequestId b = engine.submit(std::move(zero_budget));
    const RequestId c = engine.submit(std::move(negative_budget));
    for (RequestId id : {a, b, c}) {
        EXPECT_EQ(engine.state(id), RequestState::Done);
        EXPECT_TRUE(engine.output(id).empty());
    }
    EXPECT_TRUE(engine.idle());
    EXPECT_FALSE(engine.step());
    EXPECT_EQ(engine.stats().prefills, 0);
}

TEST_F(ServingTest, SubmitValidatesPromptTokens)
{
    Transformer model(weights_, fp16Setup());
    ServingEngine engine(model);
    GenRequest neg;
    neg.prompt = {3, -1, 5};
    neg.maxNewTokens = 2;
    EXPECT_THROW(engine.submit(std::move(neg)),
                 std::invalid_argument);
    GenRequest big;
    big.prompt = {static_cast<int32_t>(profile_.simDims.vocab)};
    big.maxNewTokens = 2;
    EXPECT_THROW(engine.submit(std::move(big)),
                 std::invalid_argument);
    EXPECT_THROW(ServingEngine(model, ServingConfig{.maxStreams = 0}),
                 std::invalid_argument);
}

TEST_F(ServingTest, RejectsBatchSensitiveActivationSetups)
{
    // Activation statistics spanning batch rows would make a stream's
    // tokens depend on its batch neighbors — outside the determinism
    // contract, so the engine refuses the model up front.
    QuantSetup tender = w8a8Setup(WeightMethod::Int, ActMethod::Tender,
                                  Granularity::PerGroup, 64);
    Transformer tmodel(weights_, tender);
    EXPECT_THROW(ServingEngine{tmodel}, std::invalid_argument);

    QuantSetup tensorwise = mantW4A8Setup();
    tensorwise.actGran = Granularity::PerTensor;
    Transformer pmodel(weights_, tensorwise);
    EXPECT_THROW(ServingEngine{pmodel}, std::invalid_argument);

    // Per-row setups are in contract.
    Transformer ok(weights_, mantW4A8Setup());
    EXPECT_NO_THROW(ServingEngine{ok});

    // A single-slot engine decodes at M = 1 (no foreign batch rows),
    // so even batch-sensitive setups stay in contract — this is what
    // keeps greedyGenerate working for the Tender/per-tensor
    // baselines.
    EXPECT_NO_THROW(
        ServingEngine(tmodel, ServingConfig{.maxStreams = 1}));
    const auto prompt = promptFor(0, 6, profile_.simDims.vocab);
    EXPECT_EQ(greedyGenerate(tmodel, prompt, 4),
              serialGreedy(tmodel, prompt, 4));
}

TEST_F(ServingTest, EmptyPrefillStaysWellDefined)
{
    Transformer model(weights_, fp16Setup());
    const Tensor logits = model.prefill(std::span<const int32_t>{});
    EXPECT_EQ(logits.shape(), Shape({0, profile_.simDims.vocab}));
    EXPECT_EQ(model.position(), 0);
    // The model remains usable afterwards.
    EXPECT_EQ(model.decodeStep(1).size(),
              static_cast<size_t>(profile_.simDims.vocab));
}

TEST_F(ServingTest, DecodeBatchValidatesStreams)
{
    Transformer model(weights_, fp16Setup());
    const auto prompt = promptFor(0, 6, profile_.simDims.vocab);
    StreamContext a, b;
    model.prefill(a, prompt);
    model.prefill(b, prompt);

    const int32_t toks2[] = {1, 2};
    StreamContext *dup[] = {&a, &a};
    EXPECT_THROW(model.decodeBatch(toks2, dup),
                 std::invalid_argument);

    StreamContext *one[] = {&a};
    EXPECT_THROW(model.decodeBatch(toks2, one),
                 std::invalid_argument);
    EXPECT_THROW(model.decodeBatch({}, {}), std::invalid_argument);

    StreamContext fresh;
    StreamContext *uninit[] = {&fresh};
    const int32_t tok1[] = {1};
    EXPECT_THROW(model.decodeBatch(tok1, uninit),
                 std::invalid_argument);

    // Valid two-stream batch advances both positions.
    StreamContext *both[] = {&a, &b};
    const Tensor logits = model.decodeBatch(toks2, both);
    EXPECT_EQ(logits.shape(), Shape({2, profile_.simDims.vocab}));
    EXPECT_EQ(a.position(), 7);
    EXPECT_EQ(b.position(), 7);
}

TEST_F(ServingTest, StreamsAreBoundToTheirModel)
{
    Transformer a(weights_, fp16Setup());
    Transformer b(weights_, fp16Setup());
    const auto prompt = promptFor(0, 6, profile_.simDims.vocab);
    StreamContext s;
    a.prefill(s, prompt);
    // Handing another model's stream to decodeStep/decodeBatch is a
    // caller bug, not a silent re-initialization.
    EXPECT_THROW(b.decodeStep(s, 1), std::invalid_argument);
    StreamContext *one[] = {&s};
    const int32_t tok[] = {1};
    EXPECT_THROW(b.decodeBatch(tok, one), std::invalid_argument);
    // A fresh (never-initialized) stream auto-initializes on
    // decodeStep, matching the default stream's behavior.
    StreamContext fresh;
    EXPECT_EQ(b.decodeStep(fresh, 1).size(),
              static_cast<size_t>(profile_.simDims.vocab));
    EXPECT_EQ(fresh.position(), 1);
    // prefill() claims a foreign stream outright (rebuild, pos 0).
    b.prefill(s, prompt);
    EXPECT_NO_THROW(b.decodeStep(s, 1));

    // Moving a stream disowns the source: the moved-from context is
    // uninitialized again (auto-reinit on use, never an out-of-bounds
    // read of its emptied caches) and the target keeps the state.
    StreamContext moved = std::move(s);
    EXPECT_FALSE(s.initialized());
    EXPECT_EQ(s.position(), 0);
    EXPECT_TRUE(moved.initialized());
    EXPECT_NO_THROW(b.decodeStep(moved, 2));
    EXPECT_NO_THROW(b.decodeStep(s, 2)); // fresh auto-init
}

TEST_F(ServingTest, OutputReferencesSurviveLaterSubmits)
{
    Transformer model(weights_, fp16Setup());
    ServingEngine engine(model, ServingConfig{.maxStreams = 2});
    GenRequest req;
    req.prompt = promptFor(0, 6, profile_.simDims.vocab);
    req.maxNewTokens = 4;
    const RequestId first = engine.submit(GenRequest(req));
    engine.run();
    const std::vector<int32_t> &out = engine.output(first);
    const std::vector<int32_t> copy = out;
    // Submitting (many) more requests must not move the record the
    // reference points into.
    for (int i = 0; i < 64; ++i)
        engine.submit(GenRequest(req));
    engine.run();
    EXPECT_EQ(&out, &engine.output(first));
    EXPECT_EQ(out, copy);
}

TEST_F(ServingTest, NegativeTokenIdsWrapInsteadOfUnderflowing)
{
    // embed() wraps ids Euclidean-style: -1 reads the same embedding
    // row as vocab-1 instead of indexing before the table.
    Transformer m1(weights_, fp16Setup());
    Transformer m2(weights_, fp16Setup());
    m1.prefill(promptFor(0, 4, profile_.simDims.vocab));
    m2.prefill(promptFor(0, 4, profile_.simDims.vocab));
    const auto neg = m1.decodeStep(-1);
    const auto wrapped = m2.decodeStep(
        static_cast<int32_t>(profile_.simDims.vocab) - 1);
    EXPECT_EQ(neg, wrapped);
}

TEST_F(ServingTest, EngineLeavesDefaultStreamUntouched)
{
    Transformer model(weights_, fp16Setup());
    const auto prompt = promptFor(0, 6, profile_.simDims.vocab);
    model.prefill(prompt);
    model.decodeStep(3);
    EXPECT_EQ(model.position(), 7);

    ServingEngine engine(model, ServingConfig{.maxStreams = 2});
    GenRequest req;
    req.prompt = prompt;
    req.maxNewTokens = 5;
    engine.submit(std::move(req));
    engine.run();
    EXPECT_EQ(model.position(), 7);
}

// --- chunked prefill: bit-identity at every split -------------------

/** Chunked prefill must reproduce one-shot prefill byte for byte —
 *  logits AND cache state (checked by decoding onward from both
 *  streams, which reads every K/V code written during prefill) — for
 *  every chunk size, at every SIMD × threads setting. */
void
expectChunkedPrefillMatchesOneShot(const ModelWeights &weights,
                                   const QuantSetup &setup, int vocab)
{
    // 21 tokens: chunk 8 lands on panel/page boundaries (8 rows per
    // panel block), 7 straddles them, 1 degenerates to decode-shaped
    // feeding, 21 is the whole prompt in one call.
    const auto prompt = promptFor(3, 21, vocab);
    const int64_t chunkSizes[] = {1, 7, 8,
                                  static_cast<int64_t>(prompt.size())};
    const SimdPath paths[] = {SimdPath::Scalar, SimdPath::Auto};
    const int threads[] = {1, 8};

    for (const SimdPath path : paths) {
        for (const int nthreads : threads) {
            test::withPath(path, nthreads, [&] {
                Transformer model(weights, setup);
                StreamContext oneShot;
                const Tensor ref = model.prefill(oneShot, prompt);
                std::vector<float> refDecode;
                for (const int64_t chunk : chunkSizes) {
                    StreamContext chunked;
                    model.initStream(chunked);
                    int64_t fed = 0;
                    while (fed <
                           static_cast<int64_t>(prompt.size())) {
                        const int64_t len = std::min(
                            chunk,
                            static_cast<int64_t>(prompt.size()) - fed);
                        const Tensor part = model.prefillChunk(
                            chunked,
                            std::span<const int32_t>(
                                prompt.data() + fed,
                                static_cast<size_t>(len)));
                        // Each chunk's logits are the matching rows of
                        // the one-shot pass, bit for bit.
                        for (int64_t r = 0; r < len; ++r) {
                            EXPECT_TRUE(test::bytesEqual(
                                part.row(r), ref.row(fed + r)))
                                << "chunk=" << chunk << " row "
                                << fed + r << " at "
                                << simdPathName(path) << "/threads="
                                << nthreads;
                        }
                        fed += len;
                    }
                    EXPECT_EQ(chunked.position(),
                              oneShot.position());
                    // Decode onward: any divergence in the cached K/V
                    // codes or quantizer state would surface here.
                    std::vector<float> decode;
                    int32_t tok = 5 % vocab;
                    for (int d = 0; d < 4; ++d) {
                        const auto logits =
                            model.decodeStep(chunked, tok);
                        decode.insert(decode.end(), logits.begin(),
                                      logits.end());
                        tok = argmax(logits);
                    }
                    if (refDecode.empty()) {
                        // First chunk size establishes the reference
                        // continuation (chunk == 1, the decode-shaped
                        // extreme).
                        refDecode = decode;
                    } else {
                        EXPECT_TRUE(
                            test::bytesEqual(decode, refDecode))
                            << "post-prefill decode diverged for "
                            << "chunk=" << chunk << " at "
                            << simdPathName(path) << "/threads="
                            << nthreads;
                    }
                }
                return 0;
            });
        }
    }
}

TEST_F(ServingTest, ChunkedPrefillMatchesOneShotFusedAttention)
{
    expectChunkedPrefillMatchesOneShot(weights_,
                                       mantFusedAttentionSetup(64),
                                       profile_.simDims.vocab);
}

TEST_F(ServingTest, ChunkedPrefillMatchesOneShotSmallGroups)
{
    // Group 16 < headDim 32: multiple spatial K groups per row and a
    // 16-row V process window, so a 21-token prompt finalizes one
    // window mid-prefill and leaves a 5-row tail.
    expectChunkedPrefillMatchesOneShot(weights_,
                                       mantFusedAttentionSetup(16),
                                       profile_.simDims.vocab);
}

TEST_F(ServingTest, ChunkedPrefillMatchesOneShotFloatPath)
{
    expectChunkedPrefillMatchesOneShot(weights_, fp16Setup(),
                                       profile_.simDims.vocab);
}

TEST_F(ServingTest, ChunkedPrefillMatchesOneShotUnfusedQuantKv)
{
    // Quantized KV through the float attention path (no code
    // capture): the per-row V fold must be split-invariant here too.
    expectChunkedPrefillMatchesOneShot(weights_, mantFullSetup(16),
                                       profile_.simDims.vocab);
}

TEST_F(ServingTest, PrefillMatchesTokenByTokenDecode)
{
    // The strongest form of the no-look-ahead claim: a prompt fed
    // through the decode path one token at a time yields the same
    // logits rows as one prefill call.
    Transformer model(weights_, mantFusedAttentionSetup(16));
    const auto prompt = promptFor(4, 19, profile_.simDims.vocab);
    StreamContext pre;
    const Tensor ref = model.prefill(pre, prompt);
    StreamContext step;
    model.initStream(step);
    for (size_t t = 0; t < prompt.size(); ++t) {
        const auto logits = model.decodeStep(step, prompt[t]);
        EXPECT_TRUE(test::bytesEqual(
            logits, ref.row(static_cast<int64_t>(t))))
            << "row " << t;
    }
}

/** Engine outputs must be invariant under every chunk size and page
 *  pool geometry — the scheduler decides when rows run, never what
 *  they compute. */
TEST_F(ServingTest, EngineOutputsInvariantUnderChunkingAndPaging)
{
    const auto cases = raggedCases(profile_.simDims.vocab);
    const ServingConfig configs[] = {
        {.maxStreams = 3},
        {.maxStreams = 3, .prefillChunkTokens = 1},
        {.maxStreams = 3, .prefillChunkTokens = 7},
        {.maxStreams = 3,
         .prefillChunkTokens = 8,
         .pagePoolPages = 256,
         .freePageWatermark = 4},
        {.maxStreams = 3,
         .prefillChunkTokens = 3,
         .pagePoolPages = 64,
         .freePageWatermark = 16,
         .agingSteps = 2},
    };
    std::vector<std::vector<std::vector<int32_t>>> results;
    for (const ServingConfig &cfg : configs) {
        Transformer model(weights_, mantFusedAttentionSetup(16));
        ServingEngine engine(model, cfg);
        std::vector<RequestId> ids;
        for (const ServingCase &c : cases) {
            GenRequest req;
            req.prompt = c.prompt;
            req.maxNewTokens = c.maxNewTokens;
            ids.push_back(engine.submit(std::move(req)));
        }
        engine.run();
        std::vector<std::vector<int32_t>> outs;
        for (RequestId id : ids)
            outs.push_back(engine.output(id));
        if (cfg.prefillChunkTokens > 0) {
            EXPECT_GE(engine.stats().prefillChunks,
                      engine.stats().prefills);
        }
        if (engine.pagePool()) {
            // Retirement returned every page.
            EXPECT_EQ(engine.pagePool()->inUsePages(), 0);
            EXPECT_EQ(engine.stats().peakPagesInUse,
                      engine.pagePool()->peakInUsePages());
        }
        results.push_back(std::move(outs));
    }
    for (size_t i = 1; i < results.size(); ++i)
        EXPECT_EQ(results[0], results[i]) << "config " << i;
}

// --- scheduler policy ------------------------------------------------

TEST_F(ServingTest, PriorityOrdersAdmissionFifoAmongEquals)
{
    Transformer model(weights_, mantFusedSetup(64));
    ServingEngine engine(model, ServingConfig{.maxStreams = 1});
    const auto prompt = promptFor(0, 5, profile_.simDims.vocab);
    const auto makeReq = [&](int32_t pri) {
        GenRequest r;
        r.prompt = prompt;
        r.maxNewTokens = 2;
        r.priority = pri;
        return r;
    };
    // Submission order: pri 0, 5, 2, 5. Expected completion: the two
    // fives in FIFO order, then 2, then 0.
    const RequestId ids[] = {
        engine.submit(makeReq(0)), engine.submit(makeReq(5)),
        engine.submit(makeReq(2)), engine.submit(makeReq(5))};
    std::vector<RequestId> completionOrder;
    while (!engine.idle()) {
        engine.step();
        for (const RequestId id : ids) {
            if (engine.state(id) == RequestState::Done &&
                std::find(completionOrder.begin(),
                          completionOrder.end(),
                          id) == completionOrder.end())
                completionOrder.push_back(id);
        }
    }
    const std::vector<RequestId> expect = {ids[1], ids[3], ids[2],
                                           ids[0]};
    EXPECT_EQ(completionOrder, expect);
}

TEST_F(ServingTest, TokenBudgetCapsGeneration)
{
    Transformer model(weights_, mantFusedSetup(64));
    const auto prompt = promptFor(1, 6, profile_.simDims.vocab);
    const auto full = serialGreedy(model, prompt, 10);
    ASSERT_EQ(full.size(), 10u);

    ServingEngine engine(model, ServingConfig{.maxStreams = 2});
    GenRequest capped;
    capped.prompt = prompt;
    capped.maxNewTokens = 10;
    capped.tokenBudget = static_cast<int64_t>(prompt.size()) + 3;
    const RequestId id = engine.submit(std::move(capped));
    engine.run();
    // Budget leaves room for exactly 3 generated tokens, and they are
    // the serial prefix (the cap changes length, never values).
    ASSERT_EQ(engine.output(id).size(), 3u);
    EXPECT_TRUE(std::equal(engine.output(id).begin(),
                           engine.output(id).end(), full.begin()));

    // Budget exactly covering the prompt: legal, completes empty.
    GenRequest exact;
    exact.prompt = prompt;
    exact.maxNewTokens = 4;
    exact.tokenBudget = static_cast<int64_t>(prompt.size());
    const RequestId e = engine.submit(std::move(exact));
    EXPECT_EQ(engine.state(e), RequestState::Done);
    EXPECT_TRUE(engine.output(e).empty());

    // A prompt that alone exceeds the budget is a contract violation,
    // as is a negative budget.
    GenRequest over;
    over.prompt = prompt;
    over.maxNewTokens = 4;
    over.tokenBudget = static_cast<int64_t>(prompt.size()) - 1;
    EXPECT_THROW(engine.submit(std::move(over)),
                 std::invalid_argument);
    GenRequest neg;
    neg.prompt = prompt;
    neg.maxNewTokens = 4;
    neg.tokenBudget = -1;
    EXPECT_THROW(engine.submit(std::move(neg)),
                 std::invalid_argument);
}

TEST_F(ServingTest, WatermarkDefersAdmissionUntilPagesReturn)
{
    Transformer model(weights_, mantFusedAttentionSetup(16));
    // watermark == pool cap: any page in use defers admission, so the
    // engine is forced to serialize — but the active_-empty forward-
    // progress rule must keep it moving (no livelock).
    ServingConfig cfg;
    cfg.maxStreams = 4;
    cfg.pagePoolPages = 256;
    cfg.freePageWatermark = 256;
    ServingEngine engine(model, cfg);
    ASSERT_NE(engine.pagePool(), nullptr);

    std::vector<RequestId> ids;
    for (int s = 0; s < 3; ++s) {
        GenRequest req;
        req.prompt = promptFor(s, 6, profile_.simDims.vocab);
        req.maxNewTokens = 4;
        ids.push_back(engine.submit(std::move(req)));
    }
    EXPECT_TRUE(engine.step());
    // Exactly one admission: the first went through on the forward-
    // progress rule, the second was deferred by the watermark.
    EXPECT_EQ(engine.activeStreams(), 1);
    EXPECT_EQ(engine.queuedRequests(), 2);
    EXPECT_GE(engine.stats().admissionDeferrals, 1);
    EXPECT_EQ(engine.state(ids[1]), RequestState::Queued);

    engine.run();
    // Recovery: deferred requests ran to completion once pages came
    // back, one stream at a time.
    for (const RequestId id : ids)
        EXPECT_EQ(engine.state(id), RequestState::Done);
    EXPECT_EQ(engine.stats().peakBatch, 1);
    EXPECT_EQ(engine.pagePool()->inUsePages(), 0);

    // Same outputs as an unconstrained engine.
    ServingEngine free(model, ServingConfig{.maxStreams = 4});
    std::vector<RequestId> fids;
    for (int s = 0; s < 3; ++s) {
        GenRequest req;
        req.prompt = promptFor(s, 6, profile_.simDims.vocab);
        req.maxNewTokens = 4;
        fids.push_back(free.submit(std::move(req)));
    }
    free.run();
    for (size_t s = 0; s < ids.size(); ++s)
        EXPECT_EQ(engine.output(ids[s]), free.output(fids[s]));
}

TEST_F(ServingTest, AgingBoundsLowPriorityStarvation)
{
    const auto prompt = promptFor(2, 4, profile_.simDims.vocab);
    const auto makeReq = [&](int32_t pri) {
        GenRequest r;
        r.prompt = prompt;
        r.maxNewTokens = 2;
        r.priority = pri;
        return r;
    };
    // Without aging, a steady stream of higher-priority arrivals
    // starves the low-priority request indefinitely.
    {
        Transformer model(weights_, mantFusedSetup(64));
        ServingEngine engine(model, ServingConfig{.maxStreams = 1});
        const RequestId low = engine.submit(makeReq(0));
        for (int i = 0; i < 10; ++i) {
            engine.submit(makeReq(3));
            engine.step();
        }
        EXPECT_EQ(engine.state(low), RequestState::Queued);
    }
    // With aging, the low-priority request's effective priority grows
    // by one per waited round; fresh priority-3 arrivals hold an
    // effective 4 at admission, so the wait is bounded at ~5 rounds.
    {
        Transformer model(weights_, mantFusedSetup(64));
        ServingConfig cfg;
        cfg.maxStreams = 1;
        cfg.agingSteps = 1;
        ServingEngine engine(model, cfg);
        const RequestId low = engine.submit(makeReq(0));
        int rounds = 0;
        while (engine.state(low) != RequestState::Done &&
               rounds < 10) {
            engine.submit(makeReq(3));
            engine.step();
            ++rounds;
        }
        EXPECT_EQ(engine.state(low), RequestState::Done);
        EXPECT_LE(rounds, 8);
    }
}

TEST_F(ServingTest, EngineValidatesSchedulerConfig)
{
    Transformer model(weights_, mantFusedAttentionSetup(64));
    ServingConfig neg;
    neg.prefillChunkTokens = -1;
    EXPECT_THROW(ServingEngine(model, neg), std::invalid_argument);
    ServingConfig negWm;
    negWm.freePageWatermark = -2;
    EXPECT_THROW(ServingEngine(model, negWm), std::invalid_argument);
    // Explicit pageBytes below the model's largest panel block cannot
    // hold one block per page.
    ServingConfig tiny;
    tiny.pageBytes = 8;
    EXPECT_THROW(ServingEngine(model, tiny), std::invalid_argument);
    // Non-fused models have no panel stores: no pool, knobs inert.
    Transformer fp(weights_, fp16Setup());
    ServingConfig pooled;
    pooled.pagePoolPages = 4;
    pooled.freePageWatermark = 2;
    ServingEngine engine(fp, pooled);
    EXPECT_EQ(engine.pagePool(), nullptr);
}

// --- failure & preemption model -------------------------------------

/** Worst single-stream page footprint for `cases` under this setup —
 *  measured, not modelled: a maxStreams=1 engine with an unbounded
 *  pool serializes the cases, so its pool high-water mark is the
 *  largest footprint any one stream ever reaches. Tests size bounded
 *  pools from this so "too small for the batch, big enough for any
 *  one stream" stays true as geometry evolves. */
int64_t
peakPagesSingleStream(const ModelWeights &weights,
                      const QuantSetup &setup,
                      const std::vector<ServingCase> &cases)
{
    Transformer model(weights, setup);
    ServingConfig cfg;
    cfg.maxStreams = 1;
    ServingEngine engine(model, cfg);
    for (const ServingCase &c : cases) {
        GenRequest req;
        req.prompt = c.prompt;
        req.maxNewTokens = c.maxNewTokens;
        (void)engine.submit(std::move(req));
    }
    engine.run();
    return engine.stats().peakPagesInUse;
}

/** Satellite of the failure model: every victim of preemption must
 *  produce its serial-oracle tokens byte for byte — across SIMD
 *  backend × thread count × prefill chunk size — and the scheduling
 *  itself (eviction and recompute counts) must be identical at every
 *  backend/thread setting for a fixed chunk size. */
TEST_F(ServingTest, EvictionParityAcrossBackendsThreadsAndChunks)
{
    const QuantSetup setup = mantFusedAttentionSetup(16);
    const int vocab = profile_.simDims.vocab;
    const auto cases = raggedCases(vocab);
    const int64_t peak1 =
        peakPagesSingleStream(weights_, setup, cases);
    ASSERT_GT(peak1, 0);
    // Any single stream fits; three concurrent ones cannot — the
    // scheduler must preempt to keep everyone moving.
    const int64_t poolCap =
        peak1 + std::max<int64_t>(2, peak1 / 4);

    const SimdPath paths[] = {SimdPath::Scalar, SimdPath::Auto};
    const int threadCounts[] = {1, 8};
    const int64_t chunks[] = {0, 1, 5};
    std::vector<std::vector<int32_t>> firstOuts;
    std::vector<std::pair<int64_t, int64_t>> firstSched(
        std::size(chunks), {-1, -1});
    for (const SimdPath path : paths) {
        for (const int nthreads : threadCounts) {
            for (size_t ci = 0; ci < std::size(chunks); ++ci) {
                auto res = test::withPath(path, nthreads, [&] {
                    Transformer model(weights_, setup);
                    std::vector<std::vector<int32_t>> serial;
                    for (const ServingCase &c : cases)
                        serial.push_back(serialGreedy(
                            model, c.prompt, c.maxNewTokens));
                    ServingConfig cfg;
                    cfg.maxStreams = 3;
                    cfg.prefillChunkTokens = chunks[ci];
                    cfg.pagePoolPages = poolCap;
                    ServingEngine engine(model, cfg);
                    std::vector<RequestId> ids;
                    for (const ServingCase &c : cases) {
                        GenRequest req;
                        req.prompt = c.prompt;
                        req.maxNewTokens = c.maxNewTokens;
                        ids.push_back(engine.submit(std::move(req)));
                    }
                    engine.run();
                    std::vector<std::vector<int32_t>> outs;
                    for (const RequestId id : ids) {
                        EXPECT_EQ(engine.state(id),
                                  RequestState::Done);
                        outs.push_back(engine.output(id));
                    }
                    EXPECT_EQ(engine.pagePool()->inUsePages(), 0);
                    EXPECT_LE(engine.stats().peakPagesInUse, poolCap);
                    return std::tuple(
                        std::move(serial), std::move(outs),
                        engine.stats().evictions,
                        engine.stats().recomputedTokens);
                });
                const auto &[serial, outs, evictions, recomputed] =
                    res;
                const auto where = [&] {
                    return std::string(simdPathName(path)) +
                           "/threads=" + std::to_string(nthreads) +
                           "/chunk=" + std::to_string(chunks[ci]);
                };
                // The pool really was under pressure, and eviction
                // never changed a token.
                EXPECT_GE(evictions, 1) << where();
                EXPECT_GT(recomputed, 0) << where();
                for (size_t s = 0; s < cases.size(); ++s)
                    EXPECT_EQ(outs[s], serial[s])
                        << "stream " << s << " diverged at "
                        << where();
                if (firstOuts.empty())
                    firstOuts = outs;
                else
                    EXPECT_EQ(firstOuts, outs) << where();
                // Scheduling is deterministic per chunk size: same
                // evictions and recompute volume at every backend ×
                // thread setting.
                if (firstSched[ci].first < 0)
                    firstSched[ci] = {evictions, recomputed};
                else
                    EXPECT_EQ(firstSched[ci],
                              std::pair(evictions, recomputed))
                        << where();
            }
        }
    }
}

/** Satellite regression: no exception type escapes step() for
 *  request-level faults — recurring injected storms on top of a
 *  genuinely undersized pool, and every request still finishes with
 *  its exact serial output. */
TEST_F(ServingTest, RequestLevelFaultsNeverEscapeStep)
{
    const QuantSetup setup = mantFusedAttentionSetup(16);
    const int vocab = profile_.simDims.vocab;
    const auto cases = raggedCases(vocab);
    const int64_t peak1 =
        peakPagesSingleStream(weights_, setup, cases);

    Transformer model(weights_, setup);
    std::vector<std::vector<int32_t>> serial;
    for (const ServingCase &c : cases)
        serial.push_back(
            serialGreedy(model, c.prompt, c.maxNewTokens));

    ServingConfig cfg;
    cfg.maxStreams = 3;
    cfg.prefillChunkTokens = 4;
    cfg.pagePoolPages = peak1 + std::max<int64_t>(2, peak1 / 4);
    cfg.faults.failNthAlloc = 7;
    cfg.faults.failPeriod = 9;
    cfg.faults.failLen = 2;
    ServingEngine engine(model, cfg);
    std::vector<RequestId> ids;
    for (const ServingCase &c : cases) {
        GenRequest req;
        req.prompt = c.prompt;
        req.maxNewTokens = c.maxNewTokens;
        ids.push_back(engine.submit(std::move(req)));
    }
    bool more = true;
    int guard = 0;
    while (more) {
        ASSERT_NO_THROW(more = engine.step());
        ASSERT_LT(++guard, 2000) << "engine failed to converge";
    }
    // Faults really fired and really forced evictions — and every
    // request still completed with its serial tokens.
    EXPECT_GE(engine.pagePool()->injectedFaults(), 1);
    EXPECT_GE(engine.stats().evictions, 1);
    for (size_t s = 0; s < ids.size(); ++s) {
        EXPECT_EQ(engine.state(ids[s]), RequestState::Done);
        EXPECT_EQ(engine.output(ids[s]), serial[s]) << "stream " << s;
        EXPECT_EQ(engine.error(ids[s]).kind, RequestError::Kind::None);
    }
    EXPECT_EQ(engine.pagePool()->inUsePages(), 0);
    EXPECT_EQ(engine.stats().failed, 0);
}

/** An injected storm window preempts mid-decode streams; while the
 *  storm lasts they are externally visible as Preempted, and once it
 *  ends the replay restores them with no trace in the output. */
TEST_F(ServingTest, StormPreemptsVisiblyThenReplaysInvisibly)
{
    const int vocab = profile_.simDims.vocab;
    Transformer model(weights_, mantFusedAttentionSetup(16));
    std::vector<ServingCase> cases;
    for (int s = 0; s < 3; ++s)
        cases.push_back({promptFor(s, 6 + s, vocab), 10});
    std::vector<std::vector<int32_t>> serial;
    for (const ServingCase &c : cases)
        serial.push_back(
            serialGreedy(model, c.prompt, c.maxNewTokens));

    ServingConfig cfg;
    cfg.maxStreams = 3;
    cfg.faults.failRoundsBegin = 3;
    cfg.faults.failRoundsEnd = 13;
    ServingEngine engine(model, cfg);
    std::vector<RequestId> ids;
    for (const ServingCase &c : cases) {
        GenRequest req;
        req.prompt = c.prompt;
        req.maxNewTokens = c.maxNewTokens;
        ids.push_back(engine.submit(std::move(req)));
    }
    bool sawPreempted = false;
    bool more = true;
    int guard = 0;
    while (more) {
        ASSERT_NO_THROW(more = engine.step());
        for (const RequestId id : ids)
            sawPreempted |=
                engine.state(id) == RequestState::Preempted;
        ASSERT_LT(++guard, 200);
    }
    EXPECT_TRUE(sawPreempted);
    EXPECT_GE(engine.stats().evictions, 1);
    EXPECT_GT(engine.stats().recomputedTokens, 0);
    EXPECT_GE(engine.pagePool()->injectedFaults(), 1);
    for (size_t s = 0; s < ids.size(); ++s) {
        EXPECT_EQ(engine.state(ids[s]), RequestState::Done);
        EXPECT_EQ(engine.output(ids[s]), serial[s]) << "stream " << s;
    }
    EXPECT_EQ(engine.pagePool()->inUsePages(), 0);
}

TEST_F(ServingTest, CancelKeepsPartialOutputAndFreesPages)
{
    const int vocab = profile_.simDims.vocab;
    Transformer model(weights_, mantFusedAttentionSetup(16));
    const auto prompt = promptFor(0, 6, vocab);
    const auto oracle = serialGreedy(model, prompt, 12);

    ServingConfig cfg;
    cfg.maxStreams = 1;
    ServingEngine engine(model, cfg);
    GenRequest a;
    a.prompt = prompt;
    a.maxNewTokens = 12;
    const RequestId ida = engine.submit(std::move(a));
    GenRequest b;
    b.prompt = promptFor(1, 5, vocab);
    b.maxNewTokens = 3;
    const RequestId idb = engine.submit(std::move(b));

    for (int i = 0; i < 4; ++i)
        engine.step();
    ASSERT_EQ(engine.state(ida), RequestState::Active);
    const std::vector<int32_t> &out = engine.output(ida);
    const size_t k = out.size();
    ASSERT_GT(k, 0u);
    ASSERT_LT(k, 12u);

    EXPECT_TRUE(engine.cancel(ida));
    EXPECT_EQ(engine.state(ida), RequestState::Cancelled);
    // The active stream retired on the spot: its pages are back
    // before the next step, and what was generated stays readable —
    // the exact serial prefix.
    EXPECT_EQ(engine.pagePool()->inUsePages(), 0);
    ASSERT_EQ(out.size(), k);
    EXPECT_TRUE(
        std::equal(out.begin(), out.end(), oracle.begin()));
    // Terminal means terminal: a second cancel is a no-op.
    EXPECT_FALSE(engine.cancel(ida));
    EXPECT_THROW(engine.cancel(9999), std::out_of_range);

    // The engine keeps serving: the queued request completes.
    engine.run();
    EXPECT_EQ(engine.state(idb), RequestState::Done);
    EXPECT_EQ(engine.stats().cancelled, 1);

    // Cancelling a still-queued request just removes it.
    GenRequest c;
    c.prompt = prompt;
    c.maxNewTokens = 2;
    const RequestId idc = engine.submit(std::move(c));
    ASSERT_EQ(engine.state(idc), RequestState::Queued);
    EXPECT_TRUE(engine.cancel(idc));
    EXPECT_EQ(engine.state(idc), RequestState::Cancelled);
    EXPECT_TRUE(engine.output(idc).empty());
    EXPECT_EQ(engine.queuedRequests(), 0);
    EXPECT_EQ(engine.stats().cancelled, 2);
}

TEST_F(ServingTest, DeadlineExpiresActiveAndQueuedRequests)
{
    const int vocab = profile_.simDims.vocab;
    Transformer model(weights_, mantFusedAttentionSetup(16));
    const auto prompt = promptFor(0, 6, vocab);
    const auto oracle = serialGreedy(model, prompt, 12);

    ServingConfig cfg;
    cfg.maxStreams = 1;
    ServingEngine engine(model, cfg);
    GenRequest a; // admitted first; expires mid-generation
    a.prompt = prompt;
    a.maxNewTokens = 12;
    a.deadlineSteps = 5;
    const RequestId ida = engine.submit(std::move(a));
    GenRequest b; // stuck behind `a`; expires while still queued
    b.prompt = promptFor(1, 5, vocab);
    b.maxNewTokens = 3;
    b.deadlineSteps = 3;
    const RequestId idb = engine.submit(std::move(b));
    GenRequest c; // generous deadline: must not fire at all
    c.prompt = prompt;
    c.maxNewTokens = 12;
    c.deadlineSteps = 100;
    const RequestId idc = engine.submit(std::move(c));
    engine.run();

    // Deadlines are scheduler rounds, so expiry is deterministic:
    // whatever was produced in the allotted rounds survives, and is
    // the exact serial prefix.
    EXPECT_EQ(engine.state(ida), RequestState::Expired);
    const auto &partial = engine.output(ida);
    EXPECT_GT(partial.size(), 0u);
    EXPECT_LT(partial.size(), 12u);
    EXPECT_TRUE(std::equal(partial.begin(), partial.end(),
                           oracle.begin()));
    EXPECT_EQ(engine.state(idb), RequestState::Expired);
    EXPECT_TRUE(engine.output(idb).empty());
    EXPECT_EQ(engine.state(idc), RequestState::Done);
    EXPECT_EQ(engine.output(idc), oracle);
    EXPECT_EQ(engine.stats().expired, 2);
    EXPECT_EQ(engine.pagePool()->inUsePages(), 0);

    // Negative deadlines are a contract violation at submit().
    GenRequest neg;
    neg.prompt = prompt;
    neg.maxNewTokens = 2;
    neg.deadlineSteps = -1;
    EXPECT_THROW(engine.submit(std::move(neg)),
                 std::invalid_argument);
}

/** Genuine exhaustion with nothing left to evict fails ONLY the
 *  request that cannot fit; the engine (and later requests) keep
 *  going. */
TEST_F(ServingTest, LoneOversizedRequestFailsAloneAndTyped)
{
    const QuantSetup setup = mantFusedAttentionSetup(16);
    const int vocab = profile_.simDims.vocab;
    const ServingCase big{promptFor(0, 24, vocab), 16};
    const ServingCase small{promptFor(1, 4, vocab), 2};
    const int64_t peakBig =
        peakPagesSingleStream(weights_, setup, {big});
    const int64_t peakSmall =
        peakPagesSingleStream(weights_, setup, {small});
    const int64_t poolCap = peakSmall + (peakBig - peakSmall) / 2;
    ASSERT_LT(peakSmall, poolCap);
    ASSERT_LT(poolCap, peakBig);

    Transformer model(weights_, setup);
    const auto bigOracle =
        serialGreedy(model, big.prompt, big.maxNewTokens);
    const auto smallOracle =
        serialGreedy(model, small.prompt, small.maxNewTokens);

    ServingConfig cfg;
    cfg.maxStreams = 2;
    cfg.pagePoolPages = poolCap;
    ServingEngine engine(model, cfg);
    GenRequest rb;
    rb.prompt = big.prompt;
    rb.maxNewTokens = big.maxNewTokens;
    const RequestId idBig = engine.submit(std::move(rb));
    bool more = true;
    int guard = 0;
    while (more) {
        ASSERT_NO_THROW(more = engine.step());
        ASSERT_LT(++guard, 100);
    }
    EXPECT_EQ(engine.state(idBig), RequestState::Failed);
    EXPECT_EQ(engine.error(idBig).kind,
              RequestError::Kind::PoolExhausted);
    EXPECT_FALSE(engine.error(idBig).message.empty());
    // Whatever ran before the shortfall is kept, and is untainted.
    const auto &partial = engine.output(idBig);
    EXPECT_LT(partial.size(), bigOracle.size());
    EXPECT_TRUE(std::equal(partial.begin(), partial.end(),
                           bigOracle.begin()));
    EXPECT_EQ(engine.stats().failed, 1);
    // Failure returned every page; a feasible request then sails
    // through the same engine.
    EXPECT_EQ(engine.pagePool()->inUsePages(), 0);
    GenRequest rs;
    rs.prompt = small.prompt;
    rs.maxNewTokens = small.maxNewTokens;
    const RequestId idSmall = engine.submit(std::move(rs));
    engine.run();
    EXPECT_EQ(engine.state(idSmall), RequestState::Done);
    EXPECT_EQ(engine.output(idSmall), smallOracle);
    EXPECT_EQ(engine.error(idSmall).kind, RequestError::Kind::None);
}

TEST_F(ServingTest, EngineValidatesFaultConfig)
{
    Transformer model(weights_, mantFusedAttentionSetup(64));
    const auto withFaults = [&](FaultInjectionConfig f) {
        ServingConfig cfg;
        cfg.faults = f;
        return cfg;
    };
    EXPECT_THROW(
        ServingEngine(model, withFaults({.failNthAlloc = -1})),
        std::invalid_argument);
    EXPECT_THROW(
        ServingEngine(model, withFaults({.failRoundsBegin = -2})),
        std::invalid_argument);
    EXPECT_THROW(
        ServingEngine(model, withFaults({.failRoundsEnd = -1})),
        std::invalid_argument);
    EXPECT_THROW(
        ServingEngine(model, withFaults({.failPeriod = -3})),
        std::invalid_argument);
    EXPECT_THROW(ServingEngine(model, withFaults({.failLen = -1})),
                 std::invalid_argument);
    // A storm length without a period is meaningless...
    EXPECT_THROW(ServingEngine(model, withFaults({.failLen = 2})),
                 std::invalid_argument);
    // ...and a storm covering the whole period never ends — no
    // request could ever finish, so run() would never return.
    EXPECT_THROW(ServingEngine(model, withFaults({.failPeriod = 4,
                                                  .failLen = 4})),
                 std::invalid_argument);
    EXPECT_NO_THROW(ServingEngine(
        model, withFaults({.failPeriod = 4, .failLen = 3})));
}

/** output()/error() hand out references into a deque: later
 *  submissions must never move a terminal request's record. */
TEST_F(ServingTest, TerminalOutputsAndErrorsAreDequeStable)
{
    Transformer model(weights_, mantFusedSetup(64));
    ServingConfig cfg;
    cfg.maxStreams = 2;
    ServingEngine engine(model, cfg);
    GenRequest first;
    first.prompt = promptFor(0, 5, profile_.simDims.vocab);
    first.maxNewTokens = 3;
    const RequestId id = engine.submit(std::move(first));
    engine.run();
    ASSERT_EQ(engine.state(id), RequestState::Done);
    const std::vector<int32_t> *outPtr = &engine.output(id);
    const RequestError *errPtr = &engine.error(id);
    const std::vector<int32_t> snapshot = *outPtr;

    for (int s = 1; s <= 64; ++s) {
        GenRequest r;
        r.prompt = promptFor(s, 4, profile_.simDims.vocab);
        r.maxNewTokens = 1;
        (void)engine.submit(std::move(r));
    }
    engine.run();
    EXPECT_EQ(&engine.output(id), outPtr);
    EXPECT_EQ(&engine.error(id), errPtr);
    EXPECT_EQ(*outPtr, snapshot);
    EXPECT_EQ(errPtr->kind, RequestError::Kind::None);
    EXPECT_THROW(engine.output(9999), std::out_of_range);
    EXPECT_THROW(engine.error(9999), std::out_of_range);
    EXPECT_THROW(engine.state(9999), std::out_of_range);
}

// --- generation-path regression fixes -------------------------------

TEST_F(ServingTest, GreedyGenerateClampsNonPositiveCounts)
{
    Transformer model(weights_, fp16Setup());
    const auto prompt = promptFor(0, 6, profile_.simDims.vocab);
    // numTokens == 0 used to emit the prefill argmax anyway, and a
    // negative count underflowed the size_t reserve() into a huge
    // allocation before any decode ran.
    EXPECT_TRUE(greedyGenerate(model, prompt, 0).empty());
    EXPECT_TRUE(greedyGenerate(model, prompt, -1).empty());
    EXPECT_TRUE(
        greedyGenerate(model, prompt,
                       std::numeric_limits<int64_t>::min())
            .empty());
    EXPECT_TRUE(greedyGenerate(model, {}, 8).empty());
}

TEST_F(ServingTest, GreedyGenerateMatchesManualLoop)
{
    // The engine re-expression must reproduce the hand-rolled
    // prefill + decodeStep loop byte for byte.
    Transformer a(weights_, mantFusedSetup(64));
    Transformer b(weights_, mantFusedSetup(64));
    const auto prompt = promptFor(2, 9, profile_.simDims.vocab);
    EXPECT_EQ(greedyGenerate(a, prompt, 12),
              serialGreedy(b, prompt, 12));
}

TEST_F(ServingTest, ForcedEvaluatorsRejectOutOfVocabTokens)
{
    Transformer model(weights_, fp16Setup());
    const auto prompt = promptFor(0, 6, profile_.simDims.vocab);
    const std::vector<int32_t> neg = {4, -2, 7};
    const std::vector<int32_t> big = {
        4, static_cast<int32_t>(profile_.simDims.vocab), 7};
    EXPECT_THROW(forcedLikelihood(model, prompt, neg),
                 std::out_of_range);
    EXPECT_THROW(forcedLikelihood(model, prompt, big),
                 std::out_of_range);
    EXPECT_THROW(forcedDecodingAgreement(model, prompt, neg),
                 std::out_of_range);
    EXPECT_THROW(forcedDecodingAgreement(model, prompt, big),
                 std::out_of_range);

    // Valid references still evaluate.
    const auto gen = greedyGenerate(model, prompt, 6);
    EXPECT_DOUBLE_EQ(forcedDecodingAgreement(model, prompt, gen), 1.0);
    EXPECT_GT(forcedLikelihood(model, prompt, gen), 0.0);
}

// --- HeadKvCache contract -------------------------------------------

TEST(HeadKvCacheContract, ResetReusesCapacityWithoutStaleState)
{
    const VarianceSelector sel = VarianceSelector::analytic();
    HeadKvCache cache(KvMethod::Mant4, 32, 16, &sel);
    Rng rng(77);
    std::vector<float> row(32);
    for (int r = 0; r < 6; ++r) {
        for (auto &v : row)
            v = static_cast<float>(rng.gaussian());
        cache.appendK(row);
        cache.appendV(row);
    }
    ASSERT_EQ(cache.size(), 6);
    ASSERT_FALSE(cache.kSelections().empty());
    const float *storage = cache.kRow(0).data();

    cache.reset();
    EXPECT_EQ(cache.size(), 0);
    EXPECT_TRUE(cache.kSelections().empty());
    EXPECT_EQ(cache.vMatrix().numel(), 0);

    // Refill with different data: results must match a fresh cache
    // (no stale selections), and the K storage allocation must be
    // reused (same buffer — the stream-pool recycling contract).
    HeadKvCache fresh(KvMethod::Mant4, 32, 16, &sel);
    Rng rng2(99);
    for (int r = 0; r < 6; ++r) {
        for (auto &v : row)
            v = static_cast<float>(rng2.gaussian());
        cache.appendK(row);
        cache.appendV(row);
        fresh.appendK(row);
        fresh.appendV(row);
    }
    EXPECT_EQ(cache.kRow(0).data(), storage);
    ASSERT_EQ(cache.size(), fresh.size());
    for (int64_t p = 0; p < cache.size(); ++p) {
        EXPECT_TRUE(
            test::bytesEqual(cache.kRow(p), fresh.kRow(p)));
    }
    EXPECT_TRUE(test::bytesEqual(cache.vMatrix().span(),
                                 fresh.vMatrix().span()));
    ASSERT_EQ(cache.kSelections().size(), fresh.kSelections().size());
}

TEST(HeadKvCacheContract, AccessorsReportConstruction)
{
    const VarianceSelector sel = VarianceSelector::analytic();
    const HeadKvCache cache(KvMethod::Mant4, 32, 16, &sel);
    EXPECT_EQ(cache.method(), KvMethod::Mant4);
    EXPECT_EQ(cache.headDim(), 32);
    EXPECT_EQ(cache.groupSize(), 16);
}

TEST(HeadKvCacheContract, RetireReleasesPagesAndResetRevives)
{
    const VarianceSelector sel = VarianceSelector::analytic();
    // The cache claims pages for both its K panels and its V windows;
    // the page must hold the larger of the two block sizes.
    KvPageAllocator pool(
        std::max(KPanelStore::blockBytesFor(32, 16),
                 VPanelStore::blockBytesFor(32, 16)),
        0);
    HeadKvCache cache(KvMethod::Mant4, 32, 16, &sel,
                      /*captureCodes=*/true, &pool);
    std::vector<float> row(32, 0.25f);
    for (int r = 0; r < 10; ++r) {
        cache.appendK(row);
        cache.appendV(row);
    }
    EXPECT_GT(cache.pagesHeld(), 0);
    EXPECT_EQ(pool.inUsePages(), cache.pagesHeld());

    cache.retire();
    EXPECT_TRUE(cache.retired());
    EXPECT_EQ(cache.pagesHeld(), 0);
    EXPECT_EQ(pool.inUsePages(), 0);

    // reset() revives the slot for reuse.
    cache.reset();
    EXPECT_FALSE(cache.retired());
    cache.appendK(row);
    cache.appendV(row);
    EXPECT_EQ(cache.size(), 1);
}

#ifdef NDEBUG
TEST(HeadKvCacheContract, RetiredAppendThrowsInRelease)
{
    const VarianceSelector sel = VarianceSelector::analytic();
    HeadKvCache cache(KvMethod::Mant4, 8, 8, &sel);
    std::vector<float> row(8, 0.5f);
    cache.appendK(row);
    cache.retire();
    EXPECT_THROW(cache.appendK(row), std::logic_error);
    EXPECT_THROW(cache.appendV(row), std::logic_error);
    Tensor v(Shape{1, 8});
    EXPECT_THROW(cache.prefillV(v), std::logic_error);
}
#endif

TEST(StreamRetirement, RetireStreamFreesPagesAndRejectsDecode)
{
    const ModelProfile profile = test::tinyProfile();
    const ModelWeights weights = ModelWeights::generate(profile, 128);
    Transformer model(weights, mantFusedAttentionSetup(16));
    KvPageAllocator pool(1 << 16, 0);

    StreamContext s;
    model.initStream(s, &pool);
    const auto prompt = promptFor(0, 12, profile.simDims.vocab);
    model.prefill(s, prompt);
    EXPECT_GT(pool.inUsePages(), 0);

    model.retireStream(s);
    EXPECT_EQ(pool.inUsePages(), 0);

    // Re-initializing the slot revives it; the refill reuses the same
    // pool pages (LIFO) and produces the same logits.
    StreamContext fresh;
    model.initStream(fresh, &pool);
    const Tensor a = model.prefill(fresh, prompt);
    model.retireStream(fresh);
    model.initStream(s, &pool);
    const Tensor b = model.prefill(s, prompt);
    EXPECT_TRUE(test::bytesEqual(a.span(), b.span()));

    // retireStream on a stream the model does not own is a caller bug.
    StreamContext foreign;
    EXPECT_THROW(model.retireStream(foreign), std::invalid_argument);
}

#ifndef NDEBUG
TEST(HeadKvCacheContract, KRowOutOfRangeAssertsInDebug)
{
    const VarianceSelector sel = VarianceSelector::analytic();
    HeadKvCache cache(KvMethod::Mant4, 8, 8, &sel);
    std::vector<float> row(8, 0.5f);
    cache.appendK(row);
    EXPECT_DEATH((void)cache.kRow(1), "kRow");
    EXPECT_DEATH((void)cache.kRow(-1), "kRow");
}

TEST(HeadKvCacheContract, RetiredAppendDiesInDebug)
{
    const VarianceSelector sel = VarianceSelector::analytic();
    HeadKvCache cache(KvMethod::Mant4, 8, 8, &sel);
    std::vector<float> row(8, 0.5f);
    cache.appendK(row);
    cache.retire();
    EXPECT_DEATH(cache.appendK(row), "retired");
    EXPECT_DEATH(cache.appendV(row), "retired");
}
#endif

} // namespace
} // namespace mant
