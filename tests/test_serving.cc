/**
 * @file
 * Serving-engine determinism and generation-path regression suite.
 *
 * The load-bearing claim: N-stream batched decode produces
 * byte-identical token sequences to N serial single-stream runs, at
 * every MANT_SIMD × MANT_THREADS setting, with streams joining and
 * retiring mid-batch. Plus regression tests for the generation-path
 * fixes (greedyGenerate count clamp, forced-decoding token-id
 * validation) and the HeadKvCache reset/bounds contract.
 */

#include <algorithm>
#include <limits>
#include <stdexcept>

#include <gtest/gtest.h>

#include "core/variance_selector.h"
#include "model/generation.h"
#include "model/kv_cache.h"
#include "model/model_profiles.h"
#include "serve/serving_engine.h"
#include "test_util.h"

namespace mant {
namespace {

int32_t
argmax(std::span<const float> row)
{
    return static_cast<int32_t>(
        std::max_element(row.begin(), row.end()) - row.begin());
}

std::vector<int32_t>
promptFor(int stream, int len, int vocab)
{
    Rng rng(1000 + static_cast<uint64_t>(stream));
    std::vector<int32_t> p(static_cast<size_t>(len));
    for (auto &t : p)
        t = static_cast<int32_t>(
            rng.uniformInt(static_cast<uint64_t>(vocab)));
    return p;
}

/** The pre-engine single-stream loop: prefill + decodeStep feedback on
 *  the model's default stream — the serial oracle the batched engine
 *  must reproduce byte for byte. */
std::vector<int32_t>
serialGreedy(Transformer &m, std::span<const int32_t> prompt,
             int64_t numTokens, int32_t stopToken = -1)
{
    std::vector<int32_t> out;
    if (numTokens <= 0 || prompt.empty())
        return out;
    const Tensor logits = m.prefill(prompt);
    int32_t next = argmax(logits.row(logits.shape().dim(0) - 1));
    out.push_back(next);
    while (static_cast<int64_t>(out.size()) < numTokens &&
           !(stopToken >= 0 && next == stopToken)) {
        next = argmax(m.decodeStep(next));
        out.push_back(next);
    }
    return out;
}

struct ServingCase
{
    std::vector<int32_t> prompt;
    int64_t maxNewTokens;
};

/** Ragged request mix: prompt lengths and budgets all differ, and with
 *  maxStreams below the request count, streams join and retire
 *  mid-batch. */
std::vector<ServingCase>
raggedCases(int vocab)
{
    std::vector<ServingCase> cases;
    const int64_t budgets[] = {5, 1, 9, 3, 12, 7, 2};
    for (int s = 0; s < 7; ++s)
        cases.push_back(
            {promptFor(s, 4 + 3 * (s % 4), vocab), budgets[s]});
    return cases;
}

std::vector<std::vector<int32_t>>
runEngine(Transformer &model, const std::vector<ServingCase> &cases,
          int64_t maxStreams)
{
    ServingEngine engine(model,
                         ServingConfig{.maxStreams = maxStreams});
    std::vector<RequestId> ids;
    for (const ServingCase &c : cases) {
        GenRequest req;
        req.prompt = c.prompt;
        req.maxNewTokens = c.maxNewTokens;
        ids.push_back(engine.submit(std::move(req)));
    }
    engine.run();
    std::vector<std::vector<int32_t>> outs;
    for (RequestId id : ids) {
        EXPECT_EQ(engine.state(id), RequestState::Done);
        outs.push_back(engine.output(id));
    }
    return outs;
}

class ServingTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        profile_ = test::tinyProfile();
        weights_ = ModelWeights::generate(profile_, 128);
    }

    ModelProfile profile_;
    ModelWeights weights_;
};

/** Batched == serial, per stream, byte-identical, swept over
 *  SIMD backend × thread count, with ragged joins/retirements. */
void
expectBatchedMatchesSerial(const ModelWeights &weights,
                           const QuantSetup &setup, int vocab)
{
    const std::vector<ServingCase> cases = raggedCases(vocab);
    const SimdPath paths[] = {SimdPath::Scalar, SimdPath::Auto};
    const int threads[] = {1, 8};

    std::vector<std::vector<int32_t>> first;
    for (const SimdPath path : paths) {
        for (const int nthreads : threads) {
            auto outs = test::withPath(path, nthreads, [&] {
                Transformer model(weights, setup);
                std::vector<std::vector<int32_t>> serial;
                for (const ServingCase &c : cases)
                    serial.push_back(serialGreedy(
                        model, c.prompt, c.maxNewTokens));
                auto batched = runEngine(model, cases, 3);
                return std::pair(std::move(serial),
                                 std::move(batched));
            });
            for (size_t s = 0; s < cases.size(); ++s) {
                EXPECT_EQ(outs.first[s], outs.second[s])
                    << "stream " << s << " diverged from serial at "
                    << simdPathName(path) << "/threads="
                    << nthreads;
            }
            // The determinism contract also promises identical
            // tokens across every backend × thread setting.
            if (first.empty())
                first = outs.second;
            else
                EXPECT_EQ(first, outs.second)
                    << "outputs changed under " << simdPathName(path)
                    << "/threads=" << nthreads;
        }
    }
}

TEST_F(ServingTest, BatchedMatchesSerialFusedPath)
{
    expectBatchedMatchesSerial(weights_, mantFusedSetup(64),
                               profile_.simDims.vocab);
}

TEST_F(ServingTest, BatchedMatchesSerialFloatPath)
{
    expectBatchedMatchesSerial(weights_, fp16Setup(),
                               profile_.simDims.vocab);
}

TEST_F(ServingTest, BatchedMatchesSerialFullQuantSetup)
{
    // MANT4 KV + quantized attention: the per-stream real-time cache
    // machinery runs inside the batch.
    expectBatchedMatchesSerial(weights_, mantFullSetup(),
                               profile_.simDims.vocab);
}

TEST_F(ServingTest, SchedulerStatsAndStates)
{
    Transformer model(weights_, mantFusedSetup(64));
    ServingEngine engine(model, ServingConfig{.maxStreams = 3});
    const auto cases = raggedCases(profile_.simDims.vocab);
    std::vector<RequestId> ids;
    for (const auto &c : cases) {
        GenRequest req;
        req.prompt = c.prompt;
        req.maxNewTokens = c.maxNewTokens;
        ids.push_back(engine.submit(std::move(req)));
    }
    EXPECT_EQ(engine.queuedRequests(), 7);
    EXPECT_EQ(engine.activeStreams(), 0);
    EXPECT_EQ(engine.state(ids[0]), RequestState::Queued);

    // First step: three admissions (prefill + first token each), one
    // batched pass. Budget-1 requests may already have retired.
    EXPECT_TRUE(engine.step());
    EXPECT_LE(engine.activeStreams(), 3);
    EXPECT_GE(engine.stats().prefills, 3);
    EXPECT_EQ(engine.stats().decodeBatches, 1);

    engine.run();
    EXPECT_TRUE(engine.idle());
    const ServingEngine::Stats &st = engine.stats();
    EXPECT_EQ(st.prefills, 7);
    EXPECT_LE(st.peakBatch, 3);
    EXPECT_GE(st.peakBatch, 1);
    int64_t total = 0;
    for (RequestId id : ids) {
        EXPECT_EQ(engine.state(id), RequestState::Done);
        total += static_cast<int64_t>(engine.output(id).size());
        EXPECT_EQ(static_cast<int64_t>(engine.output(id).size()),
                  cases[static_cast<size_t>(id)].maxNewTokens);
    }
    // Every token beyond each request's first came from a batched
    // decode pass.
    EXPECT_EQ(st.decodedTokens, total - 7);
    EXPECT_THROW(engine.state(99), std::out_of_range);
    EXPECT_THROW(engine.output(-1), std::out_of_range);
}

TEST_F(ServingTest, StopTokenRetiresEarly)
{
    Transformer model(weights_, fp16Setup());
    const auto prompt = promptFor(0, 8, profile_.simDims.vocab);
    const auto full = serialGreedy(model, prompt, 10);
    ASSERT_GE(full.size(), 3u);

    ServingEngine engine(model, ServingConfig{.maxStreams = 2});
    GenRequest req;
    req.prompt = prompt;
    req.maxNewTokens = 10;
    req.stopToken = full[1];
    const RequestId id = engine.submit(std::move(req));
    engine.run();
    const auto &out = engine.output(id);
    // Generation halts at the first occurrence of the stop token,
    // which is kept in the output.
    const auto stop_at = std::find(full.begin(), full.end(), full[1]);
    const size_t expect_len =
        static_cast<size_t>(stop_at - full.begin()) + 1;
    ASSERT_EQ(out.size(), expect_len);
    EXPECT_TRUE(std::equal(out.begin(), out.end(), full.begin()));
    EXPECT_EQ(out.back(), full[1]);
}

TEST_F(ServingTest, DegenerateRequestsCompleteImmediately)
{
    Transformer model(weights_, fp16Setup());
    ServingEngine engine(model);
    GenRequest empty_prompt;
    empty_prompt.maxNewTokens = 4;
    GenRequest zero_budget;
    zero_budget.prompt = promptFor(0, 4, profile_.simDims.vocab);
    zero_budget.maxNewTokens = 0;
    GenRequest negative_budget = zero_budget;
    negative_budget.maxNewTokens = -3;

    const RequestId a = engine.submit(std::move(empty_prompt));
    const RequestId b = engine.submit(std::move(zero_budget));
    const RequestId c = engine.submit(std::move(negative_budget));
    for (RequestId id : {a, b, c}) {
        EXPECT_EQ(engine.state(id), RequestState::Done);
        EXPECT_TRUE(engine.output(id).empty());
    }
    EXPECT_TRUE(engine.idle());
    EXPECT_FALSE(engine.step());
    EXPECT_EQ(engine.stats().prefills, 0);
}

TEST_F(ServingTest, SubmitValidatesPromptTokens)
{
    Transformer model(weights_, fp16Setup());
    ServingEngine engine(model);
    GenRequest neg;
    neg.prompt = {3, -1, 5};
    neg.maxNewTokens = 2;
    EXPECT_THROW(engine.submit(std::move(neg)),
                 std::invalid_argument);
    GenRequest big;
    big.prompt = {static_cast<int32_t>(profile_.simDims.vocab)};
    big.maxNewTokens = 2;
    EXPECT_THROW(engine.submit(std::move(big)),
                 std::invalid_argument);
    EXPECT_THROW(ServingEngine(model, ServingConfig{.maxStreams = 0}),
                 std::invalid_argument);
}

TEST_F(ServingTest, RejectsBatchSensitiveActivationSetups)
{
    // Activation statistics spanning batch rows would make a stream's
    // tokens depend on its batch neighbors — outside the determinism
    // contract, so the engine refuses the model up front.
    QuantSetup tender = w8a8Setup(WeightMethod::Int, ActMethod::Tender,
                                  Granularity::PerGroup, 64);
    Transformer tmodel(weights_, tender);
    EXPECT_THROW(ServingEngine{tmodel}, std::invalid_argument);

    QuantSetup tensorwise = mantW4A8Setup();
    tensorwise.actGran = Granularity::PerTensor;
    Transformer pmodel(weights_, tensorwise);
    EXPECT_THROW(ServingEngine{pmodel}, std::invalid_argument);

    // Per-row setups are in contract.
    Transformer ok(weights_, mantW4A8Setup());
    EXPECT_NO_THROW(ServingEngine{ok});

    // A single-slot engine decodes at M = 1 (no foreign batch rows),
    // so even batch-sensitive setups stay in contract — this is what
    // keeps greedyGenerate working for the Tender/per-tensor
    // baselines.
    EXPECT_NO_THROW(
        ServingEngine(tmodel, ServingConfig{.maxStreams = 1}));
    const auto prompt = promptFor(0, 6, profile_.simDims.vocab);
    EXPECT_EQ(greedyGenerate(tmodel, prompt, 4),
              serialGreedy(tmodel, prompt, 4));
}

TEST_F(ServingTest, EmptyPrefillStaysWellDefined)
{
    Transformer model(weights_, fp16Setup());
    const Tensor logits = model.prefill(std::span<const int32_t>{});
    EXPECT_EQ(logits.shape(), Shape({0, profile_.simDims.vocab}));
    EXPECT_EQ(model.position(), 0);
    // The model remains usable afterwards.
    EXPECT_EQ(model.decodeStep(1).size(),
              static_cast<size_t>(profile_.simDims.vocab));
}

TEST_F(ServingTest, DecodeBatchValidatesStreams)
{
    Transformer model(weights_, fp16Setup());
    const auto prompt = promptFor(0, 6, profile_.simDims.vocab);
    StreamContext a, b;
    model.prefill(a, prompt);
    model.prefill(b, prompt);

    const int32_t toks2[] = {1, 2};
    StreamContext *dup[] = {&a, &a};
    EXPECT_THROW(model.decodeBatch(toks2, dup),
                 std::invalid_argument);

    StreamContext *one[] = {&a};
    EXPECT_THROW(model.decodeBatch(toks2, one),
                 std::invalid_argument);
    EXPECT_THROW(model.decodeBatch({}, {}), std::invalid_argument);

    StreamContext fresh;
    StreamContext *uninit[] = {&fresh};
    const int32_t tok1[] = {1};
    EXPECT_THROW(model.decodeBatch(tok1, uninit),
                 std::invalid_argument);

    // Valid two-stream batch advances both positions.
    StreamContext *both[] = {&a, &b};
    const Tensor logits = model.decodeBatch(toks2, both);
    EXPECT_EQ(logits.shape(), Shape({2, profile_.simDims.vocab}));
    EXPECT_EQ(a.position(), 7);
    EXPECT_EQ(b.position(), 7);
}

TEST_F(ServingTest, StreamsAreBoundToTheirModel)
{
    Transformer a(weights_, fp16Setup());
    Transformer b(weights_, fp16Setup());
    const auto prompt = promptFor(0, 6, profile_.simDims.vocab);
    StreamContext s;
    a.prefill(s, prompt);
    // Handing another model's stream to decodeStep/decodeBatch is a
    // caller bug, not a silent re-initialization.
    EXPECT_THROW(b.decodeStep(s, 1), std::invalid_argument);
    StreamContext *one[] = {&s};
    const int32_t tok[] = {1};
    EXPECT_THROW(b.decodeBatch(tok, one), std::invalid_argument);
    // A fresh (never-initialized) stream auto-initializes on
    // decodeStep, matching the default stream's behavior.
    StreamContext fresh;
    EXPECT_EQ(b.decodeStep(fresh, 1).size(),
              static_cast<size_t>(profile_.simDims.vocab));
    EXPECT_EQ(fresh.position(), 1);
    // prefill() claims a foreign stream outright (rebuild, pos 0).
    b.prefill(s, prompt);
    EXPECT_NO_THROW(b.decodeStep(s, 1));

    // Moving a stream disowns the source: the moved-from context is
    // uninitialized again (auto-reinit on use, never an out-of-bounds
    // read of its emptied caches) and the target keeps the state.
    StreamContext moved = std::move(s);
    EXPECT_FALSE(s.initialized());
    EXPECT_EQ(s.position(), 0);
    EXPECT_TRUE(moved.initialized());
    EXPECT_NO_THROW(b.decodeStep(moved, 2));
    EXPECT_NO_THROW(b.decodeStep(s, 2)); // fresh auto-init
}

TEST_F(ServingTest, OutputReferencesSurviveLaterSubmits)
{
    Transformer model(weights_, fp16Setup());
    ServingEngine engine(model, ServingConfig{.maxStreams = 2});
    GenRequest req;
    req.prompt = promptFor(0, 6, profile_.simDims.vocab);
    req.maxNewTokens = 4;
    const RequestId first = engine.submit(GenRequest(req));
    engine.run();
    const std::vector<int32_t> &out = engine.output(first);
    const std::vector<int32_t> copy = out;
    // Submitting (many) more requests must not move the record the
    // reference points into.
    for (int i = 0; i < 64; ++i)
        engine.submit(GenRequest(req));
    engine.run();
    EXPECT_EQ(&out, &engine.output(first));
    EXPECT_EQ(out, copy);
}

TEST_F(ServingTest, NegativeTokenIdsWrapInsteadOfUnderflowing)
{
    // embed() wraps ids Euclidean-style: -1 reads the same embedding
    // row as vocab-1 instead of indexing before the table.
    Transformer m1(weights_, fp16Setup());
    Transformer m2(weights_, fp16Setup());
    m1.prefill(promptFor(0, 4, profile_.simDims.vocab));
    m2.prefill(promptFor(0, 4, profile_.simDims.vocab));
    const auto neg = m1.decodeStep(-1);
    const auto wrapped = m2.decodeStep(
        static_cast<int32_t>(profile_.simDims.vocab) - 1);
    EXPECT_EQ(neg, wrapped);
}

TEST_F(ServingTest, EngineLeavesDefaultStreamUntouched)
{
    Transformer model(weights_, fp16Setup());
    const auto prompt = promptFor(0, 6, profile_.simDims.vocab);
    model.prefill(prompt);
    model.decodeStep(3);
    EXPECT_EQ(model.position(), 7);

    ServingEngine engine(model, ServingConfig{.maxStreams = 2});
    GenRequest req;
    req.prompt = prompt;
    req.maxNewTokens = 5;
    engine.submit(std::move(req));
    engine.run();
    EXPECT_EQ(model.position(), 7);
}

// --- generation-path regression fixes -------------------------------

TEST_F(ServingTest, GreedyGenerateClampsNonPositiveCounts)
{
    Transformer model(weights_, fp16Setup());
    const auto prompt = promptFor(0, 6, profile_.simDims.vocab);
    // numTokens == 0 used to emit the prefill argmax anyway, and a
    // negative count underflowed the size_t reserve() into a huge
    // allocation before any decode ran.
    EXPECT_TRUE(greedyGenerate(model, prompt, 0).empty());
    EXPECT_TRUE(greedyGenerate(model, prompt, -1).empty());
    EXPECT_TRUE(
        greedyGenerate(model, prompt,
                       std::numeric_limits<int64_t>::min())
            .empty());
    EXPECT_TRUE(greedyGenerate(model, {}, 8).empty());
}

TEST_F(ServingTest, GreedyGenerateMatchesManualLoop)
{
    // The engine re-expression must reproduce the hand-rolled
    // prefill + decodeStep loop byte for byte.
    Transformer a(weights_, mantFusedSetup(64));
    Transformer b(weights_, mantFusedSetup(64));
    const auto prompt = promptFor(2, 9, profile_.simDims.vocab);
    EXPECT_EQ(greedyGenerate(a, prompt, 12),
              serialGreedy(b, prompt, 12));
}

TEST_F(ServingTest, ForcedEvaluatorsRejectOutOfVocabTokens)
{
    Transformer model(weights_, fp16Setup());
    const auto prompt = promptFor(0, 6, profile_.simDims.vocab);
    const std::vector<int32_t> neg = {4, -2, 7};
    const std::vector<int32_t> big = {
        4, static_cast<int32_t>(profile_.simDims.vocab), 7};
    EXPECT_THROW(forcedLikelihood(model, prompt, neg),
                 std::out_of_range);
    EXPECT_THROW(forcedLikelihood(model, prompt, big),
                 std::out_of_range);
    EXPECT_THROW(forcedDecodingAgreement(model, prompt, neg),
                 std::out_of_range);
    EXPECT_THROW(forcedDecodingAgreement(model, prompt, big),
                 std::out_of_range);

    // Valid references still evaluate.
    const auto gen = greedyGenerate(model, prompt, 6);
    EXPECT_DOUBLE_EQ(forcedDecodingAgreement(model, prompt, gen), 1.0);
    EXPECT_GT(forcedLikelihood(model, prompt, gen), 0.0);
}

// --- HeadKvCache contract -------------------------------------------

TEST(HeadKvCacheContract, ResetReusesCapacityWithoutStaleState)
{
    const VarianceSelector sel = VarianceSelector::analytic();
    HeadKvCache cache(KvMethod::Mant4, 32, 16, &sel);
    Rng rng(77);
    std::vector<float> row(32);
    for (int r = 0; r < 6; ++r) {
        for (auto &v : row)
            v = static_cast<float>(rng.gaussian());
        cache.appendK(row);
        cache.appendV(row);
    }
    ASSERT_EQ(cache.size(), 6);
    ASSERT_FALSE(cache.kSelections().empty());
    const float *storage = cache.kRow(0).data();

    cache.reset();
    EXPECT_EQ(cache.size(), 0);
    EXPECT_TRUE(cache.kSelections().empty());
    EXPECT_EQ(cache.vMatrix().numel(), 0);

    // Refill with different data: results must match a fresh cache
    // (no stale selections), and the K storage allocation must be
    // reused (same buffer — the stream-pool recycling contract).
    HeadKvCache fresh(KvMethod::Mant4, 32, 16, &sel);
    Rng rng2(99);
    for (int r = 0; r < 6; ++r) {
        for (auto &v : row)
            v = static_cast<float>(rng2.gaussian());
        cache.appendK(row);
        cache.appendV(row);
        fresh.appendK(row);
        fresh.appendV(row);
    }
    EXPECT_EQ(cache.kRow(0).data(), storage);
    ASSERT_EQ(cache.size(), fresh.size());
    for (int64_t p = 0; p < cache.size(); ++p) {
        EXPECT_TRUE(
            test::bytesEqual(cache.kRow(p), fresh.kRow(p)));
    }
    EXPECT_TRUE(test::bytesEqual(cache.vMatrix().span(),
                                 fresh.vMatrix().span()));
    ASSERT_EQ(cache.kSelections().size(), fresh.kSelections().size());
}

TEST(HeadKvCacheContract, AccessorsReportConstruction)
{
    const VarianceSelector sel = VarianceSelector::analytic();
    const HeadKvCache cache(KvMethod::Mant4, 32, 16, &sel);
    EXPECT_EQ(cache.method(), KvMethod::Mant4);
    EXPECT_EQ(cache.headDim(), 32);
    EXPECT_EQ(cache.groupSize(), 16);
}

#ifndef NDEBUG
TEST(HeadKvCacheContract, KRowOutOfRangeAssertsInDebug)
{
    const VarianceSelector sel = VarianceSelector::analytic();
    HeadKvCache cache(KvMethod::Mant4, 8, 8, &sel);
    std::vector<float> row(8, 0.5f);
    cache.appendK(row);
    EXPECT_DEATH((void)cache.kRow(1), "kRow");
    EXPECT_DEATH((void)cache.kRow(-1), "kRow");
}
#endif

} // namespace
} // namespace mant
