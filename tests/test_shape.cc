#include <gtest/gtest.h>

#include "tensor/shape.h"

namespace mant {
namespace {

TEST(Shape, Rank1Basics)
{
    Shape s{10};
    EXPECT_EQ(s.rank(), 1);
    EXPECT_EQ(s.dim(0), 10);
    EXPECT_EQ(s.numel(), 10);
    EXPECT_EQ(s.stride(0), 1);
    EXPECT_EQ(s.innerDim(), 10);
    EXPECT_EQ(s.outerCount(), 1);
}

TEST(Shape, Rank2Strides)
{
    Shape s{3, 7};
    EXPECT_EQ(s.rank(), 2);
    EXPECT_EQ(s.numel(), 21);
    EXPECT_EQ(s.stride(0), 7);
    EXPECT_EQ(s.stride(1), 1);
    EXPECT_EQ(s.innerDim(), 7);
    EXPECT_EQ(s.outerCount(), 3);
}

TEST(Shape, Rank3Strides)
{
    Shape s{2, 3, 5};
    EXPECT_EQ(s.numel(), 30);
    EXPECT_EQ(s.stride(0), 15);
    EXPECT_EQ(s.stride(1), 5);
    EXPECT_EQ(s.stride(2), 1);
    EXPECT_EQ(s.outerCount(), 6);
}

TEST(Shape, Equality)
{
    EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
    EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
    EXPECT_NE(Shape({2, 3}), Shape({2, 3, 1}));
}

TEST(Shape, ZeroDimAllowed)
{
    Shape s{0, 4};
    EXPECT_EQ(s.numel(), 0);
}

TEST(Shape, ToString)
{
    EXPECT_EQ(Shape({2, 3}).toString(), "[2, 3]");
}

TEST(Shape, RejectsBadRank)
{
    EXPECT_THROW(Shape({1, 2, 3, 4, 5}), std::invalid_argument);
}

TEST(Shape, RejectsNegativeDim)
{
    EXPECT_THROW(Shape({-1, 2}), std::invalid_argument);
}

TEST(Shape, AxisOutOfRangeThrows)
{
    Shape s{2, 2};
    EXPECT_THROW(s.dim(2), std::out_of_range);
    EXPECT_THROW(s.stride(-1), std::out_of_range);
}

} // namespace
} // namespace mant
