#include <cmath>

#include <gtest/gtest.h>

#include "sim/accelerators.h"
#include "sim/layer_walker.h"
#include "sim/systolic.h"

namespace mant {
namespace {

TEST(ArchConfig, MantLaneComposition)
{
    const ArchConfig a = mantArch();
    EXPECT_EQ(a.lanes(8, 8), 1024);  // 32x32 native
    EXPECT_EQ(a.lanes(8, 4), 2048);  // 64x32 (Sec. VI-B)
    EXPECT_EQ(a.lanes(8, 2), 4096);  // 128x32
    EXPECT_EQ(a.arrayRows(8, 4), 64);
}

TEST(ArchConfig, Baseline4bitComposition)
{
    const ArchConfig a = tenderArch();
    EXPECT_EQ(a.lanes(4, 4), 4096);
    EXPECT_EQ(a.lanes(8, 4), 2048);
    EXPECT_EQ(a.lanes(8, 8), 1024);
    EXPECT_EQ(a.lanes(16, 16), 256);
}

TEST(ArchConfig, BytesPerCycle)
{
    ArchConfig a = mantArch();
    a.dramGBps = 128.0;
    a.freqGHz = 1.0;
    EXPECT_DOUBLE_EQ(a.bytesPerCycle(), 128.0);
}

TEST(Systolic, ComputeBoundLargeGemm)
{
    const ArchConfig arch = mantArch();
    GemmShape g;
    g.m = 2048;
    g.k = 4096;
    g.n = 4096;
    g.actBits = 8;
    g.weightBits = 4;
    g.mantWeights = true;
    const GemmStats s = simulateGemm(arch, g);
    EXPECT_FALSE(s.memoryBound);
    // Cycles at least macOps / lanes.
    EXPECT_GE(s.cycles, s.macOps / 2048.0);
    EXPECT_LT(s.cycles, s.macOps / 2048.0 * 1.2);
    EXPECT_EQ(s.sacOps, s.macOps);
}

TEST(Systolic, MemoryBoundGemv)
{
    const ArchConfig arch = mantArch();
    GemmShape g;
    g.m = 1; // decode-stage GEMV
    g.k = 4096;
    g.n = 4096;
    g.actBits = 8;
    g.weightBits = 4;
    const GemmStats s = simulateGemm(arch, g);
    EXPECT_TRUE(s.memoryBound);
    EXPECT_GT(s.dramBytes, 4096.0 * 4096 * 0.5);
}

TEST(Systolic, LowerWeightBitsFewerCycles)
{
    const ArchConfig arch = mantArch();
    GemmShape g;
    g.m = 512;
    g.k = 2048;
    g.n = 2048;
    g.actBits = 8;
    g.weightBits = 8;
    const double c8 = simulateGemm(arch, g).cycles;
    g.weightBits = 4;
    const double c4 = simulateGemm(arch, g).cycles;
    EXPECT_NEAR(c8 / c4, 2.0, 0.2);
}

TEST(Systolic, MetadataCostedForGroups)
{
    const ArchConfig arch = mantArch();
    GemmShape g;
    g.m = 1;
    g.k = 4096;
    g.n = 4096;
    g.groupSize = 64;
    g.mantWeights = true;
    const double with_groups = simulateGemm(arch, g).dramBytes;
    g.groupSize = 0;
    g.mantWeights = false;
    const double without = simulateGemm(arch, g).dramBytes;
    // 3 bytes per 64-element weight group + 2 per act group.
    EXPECT_GT(with_groups, without);
    EXPECT_LT(with_groups, without * 1.15);
}

TEST(Systolic, DividerHiddenWithManyKTiles)
{
    EXPECT_EQ(exposedDividerCycles(12, 10), 0.0);
    EXPECT_EQ(exposedDividerCycles(20, 10), 0.0);
    EXPECT_EQ(exposedDividerCycles(4, 10), 80.0);
    EXPECT_EQ(exposedDividerCycles(11, 1), 1.0);
}

TEST(Systolic, RquTailSmall)
{
    // 64-element groups over 32 columns: 2 rounds (Fig. 10).
    EXPECT_EQ(rquTailCycles(32, 64), 34.0);
    EXPECT_EQ(rquTailCycles(32, 32), 33.0);
}

TEST(Systolic, QuantOverheadLargerWithoutRqu)
{
    GemmShape g;
    g.m = 2048;
    g.k = 4096;
    g.n = 4096;
    g.outputQuant = true;
    const GemmStats with_rqu = simulateGemm(mantArch(), g);
    const GemmStats without = simulateGemm(tenderArch(), g);
    EXPECT_LT(with_rqu.exposedQuantCycles, without.exposedQuantCycles);
}

TEST(Systolic, QuantOverheadSmallFraction)
{
    // The paper: ~0.3% non-overlapped overhead on (2048,4096,4096).
    GemmShape g;
    g.m = 2048;
    g.k = 4096;
    g.n = 4096;
    g.outputQuant = true;
    g.mantWeights = true;
    const GemmStats s = simulateGemm(mantArch(), g);
    EXPECT_LT(s.exposedQuantCycles / s.cycles, 0.01);
}

TEST(Systolic, EnergyComponentsPositive)
{
    GemmShape g;
    g.m = 128;
    g.k = 1024;
    g.n = 1024;
    const GemmStats s = simulateGemm(mantArch(), g);
    EXPECT_GT(s.energy.corePj, 0.0);
    EXPECT_GT(s.energy.bufferPj, 0.0);
    EXPECT_GT(s.energy.dramPj, 0.0);
    EXPECT_GT(s.energy.staticPj, 0.0);
    EXPECT_NEAR(s.energy.totalPj(),
                s.energy.corePj + s.energy.bufferPj + s.energy.dramPj +
                    s.energy.staticPj,
                1e-6);
}

TEST(Systolic, StatsAggregation)
{
    GemmShape g;
    g.m = 16;
    g.k = 256;
    g.n = 256;
    const GemmStats one = simulateGemm(mantArch(), g);
    GemmStats two = one;
    two.add(one);
    EXPECT_DOUBLE_EQ(two.cycles, 2.0 * one.cycles);
    EXPECT_DOUBLE_EQ(two.energy.totalPj(), 2.0 * one.energy.totalPj());
}

TEST(Walker, LinearWorkCounts)
{
    WalkSpec spec;
    spec.dims.nLayers = 2;
    spec.dims.dModel = 128;
    spec.dims.nHeads = 4;
    spec.dims.dFfn = 512;
    spec.ffnMats = 3;
    const auto items = linearWork(spec);
    ASSERT_EQ(items.size(), 6u); // 3 entries per layer
    int64_t gemms = 0;
    for (const auto &i : items)
        gemms += i.count;
    EXPECT_EQ(gemms, 2 * (4 + 2 + 1));
}

TEST(Walker, PerLayerBitsRespected)
{
    WalkSpec spec;
    spec.dims.nLayers = 2;
    spec.dims.dModel = 128;
    spec.dims.nHeads = 4;
    spec.dims.dFfn = 512;
    spec.layerWeightBits = {4, 8};
    const auto items = linearWork(spec);
    EXPECT_EQ(items[0].shape.weightBits, 4);
    EXPECT_EQ(items[3].shape.weightBits, 8);
}

TEST(Walker, MantFlagDropsFor8BitLayers)
{
    WalkSpec spec;
    spec.dims.nLayers = 2;
    spec.dims.dModel = 128;
    spec.dims.nHeads = 4;
    spec.dims.dFfn = 512;
    spec.mantWeights = true;
    spec.layerWeightBits = {4, 8};
    const auto items = linearWork(spec);
    EXPECT_TRUE(items[0].shape.mantWeights);
    EXPECT_FALSE(items[3].shape.mantWeights);
}

TEST(Walker, AttentionScalesWithContext)
{
    WalkSpec spec;
    spec.dims.nLayers = 4;
    spec.dims.dModel = 256;
    spec.dims.nHeads = 8;
    spec.dims.dFfn = 512;
    spec.stage = Stage::Decode;
    spec.seqLen = 1024;
    const auto i1k = attentionWork(spec);
    spec.seqLen = 4096;
    const auto i4k = attentionWork(spec);
    const GemmStats s1 = runWork(mantArch(), i1k);
    const GemmStats s4 = runWork(mantArch(), i4k);
    EXPECT_GT(s4.dramBytes, 3.5 * s1.dramBytes);
}

TEST(Walker, BadBitVectorThrows)
{
    WalkSpec spec;
    spec.dims.nLayers = 3;
    spec.dims.dModel = 64;
    spec.dims.nHeads = 2;
    spec.dims.dFfn = 128;
    spec.layerWeightBits = {4, 8}; // wrong length
    EXPECT_THROW(linearWork(spec), std::invalid_argument);
}

TEST(Archs, CatalogueOrder)
{
    const auto archs = allArchs();
    ASSERT_EQ(archs.size(), 5u);
    EXPECT_EQ(archs[0].name, "MANT");
    EXPECT_EQ(archs[4].name, "BitFusion");
    EXPECT_TRUE(archs[0].mantFused);
    EXPECT_FALSE(archs[1].mantFused);
}

TEST(Archs, DecodePerTokenMantFasterAtLongContext)
{
    // The Fig. 13 headline at 128K: MANT's 4-bit KV beats FP16 KV.
    WalkSpec mant_spec;
    mant_spec.dims.nLayers = 32;
    mant_spec.dims.dModel = 4096;
    mant_spec.dims.nHeads = 32;
    mant_spec.dims.dFfn = 11008;
    mant_spec.stage = Stage::Decode;
    mant_spec.seqLen = 131072;
    mant_spec.attnActBits = 8;
    mant_spec.kvBits = 4;
    mant_spec.attnGroupSize = 64;
    mant_spec.mantKv = true;

    WalkSpec base_spec = mant_spec;
    base_spec.attnActBits = 16;
    base_spec.kvBits = 16;
    base_spec.attnGroupSize = 0;
    base_spec.mantKv = false;

    const GemmStats sm = runWork(mantArch(), attentionWork(mant_spec));
    const GemmStats sb = runWork(oliveArch(), attentionWork(base_spec));
    EXPECT_GT(sb.cycles / sm.cycles, 3.0);
    EXPECT_LT(sb.cycles / sm.cycles, 4.5);
}

} // namespace
} // namespace mant
