/**
 * @file
 * SIMD dispatch and parity tests.
 *
 * The core suite pins the scalar backend, then the best available
 * backend, and asserts *bit-identical* results for every routed
 * kernel: packed MANT streams, dequantized tensors, quantizer engine
 * outputs and stats, fused GEMM, linearNT, and calibration — across
 * every fixed format × group size {-1, 1, 32, 128, 40}, at 1 and 8
 * threads. On a machine whose best path is scalar the comparisons are
 * trivially true; the dispatch tests still exercise the resolution
 * logic (MANT_SIMD parsing, overrides, fallbacks).
 */

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/fused_gemm.h"
#include "core/packed.h"
#include "core/parallel.h"
#include "core/simd.h"
#include "model/calibration.h"
#include "model/quantized_linear.h"
#include "quant/fixed_formats.h"
#include "quant/group_quantizer.h"
#include "quant/olive.h"
#include "quant/tender.h"
#include "test_util.h"

namespace mant {
namespace {

/** Saves/restores MANT_SIMD and MANT_THREADS; clears overrides. */
class SimdEnvGuard
{
  public:
    SimdEnvGuard()
    {
        save("MANT_SIMD", &hadSimd_, &simd_);
        save("MANT_THREADS", &hadThreads_, &threads_);
        unsetenv("MANT_SIMD");
        setSimdPath(SimdPath::Auto);
        setMaxThreads(0);
    }

    ~SimdEnvGuard()
    {
        restore("MANT_SIMD", hadSimd_, simd_);
        restore("MANT_THREADS", hadThreads_, threads_);
        setSimdPath(SimdPath::Auto);
        setMaxThreads(0);
    }

  private:
    static void
    save(const char *name, bool *had, std::string *value)
    {
        const char *v = std::getenv(name);
        *had = v != nullptr;
        if (v)
            *value = v;
    }

    static void
    restore(const char *name, bool had, const std::string &value)
    {
        if (had)
            setenv(name, value.c_str(), 1);
        else
            unsetenv(name);
    }

    bool hadSimd_ = false, hadThreads_ = false;
    std::string simd_, threads_;
};

using test::bytesEqual;
using test::withPath;

const std::vector<int64_t> &
groupSizes()
{
    static const std::vector<int64_t> sizes = {-1, 1, 32, 128, 40};
    return sizes;
}

QuantConfig
groupCfg(int64_t g)
{
    QuantConfig cfg;
    cfg.gran = Granularity::PerGroup;
    cfg.groupSize = g;
    return cfg;
}

/* ------------------------------------------------------------------ */
/* Dispatch resolution                                                 */
/* ------------------------------------------------------------------ */

TEST(SimdDispatch, BestPathIsAvailableAndActiveByDefault)
{
    SimdEnvGuard env;
    const SimdPath best = bestSimdPath();
    EXPECT_NE(best, SimdPath::Auto);
    EXPECT_EQ(activeSimdPath(), best);
    EXPECT_STREQ(simdOps().name, simdPathName(best));
}

TEST(SimdDispatch, EnvSelectsScalar)
{
    SimdEnvGuard env;
    setenv("MANT_SIMD", "scalar", 1);
    EXPECT_EQ(activeSimdPath(), SimdPath::Scalar);
    EXPECT_STREQ(simdOps().name, "scalar");
    // Case-insensitive, like most feature-flag env vars.
    setenv("MANT_SIMD", "SCALAR", 1);
    EXPECT_EQ(activeSimdPath(), SimdPath::Scalar);
}

TEST(SimdDispatch, EnvGarbageFallsBackToAuto)
{
    SimdEnvGuard env;
    for (const char *bad : {"garbage", "avx512", "scalar2", "", "1"}) {
        setenv("MANT_SIMD", bad, 1);
        EXPECT_EQ(activeSimdPath(), bestSimdPath())
            << "MANT_SIMD=" << bad;
    }
    setenv("MANT_SIMD", "auto", 1);
    EXPECT_EQ(activeSimdPath(), bestSimdPath());
}

TEST(SimdDispatch, EnvUnavailableBackendFallsBackToAuto)
{
    SimdEnvGuard env;
    // At most one of avx2/neon can be available; naming the present
    // one selects it and naming the missing one falls back — both
    // land on bestSimdPath(), never on a missing backend or Auto.
    for (const char *name : {"avx2", "neon"}) {
        setenv("MANT_SIMD", name, 1);
        const SimdPath got = activeSimdPath();
        EXPECT_EQ(got, bestSimdPath()) << "MANT_SIMD=" << name;
        EXPECT_NE(got, SimdPath::Auto) << "MANT_SIMD=" << name;
    }
}

TEST(SimdDispatch, OverrideBeatsEnvAndClears)
{
    SimdEnvGuard env;
    setenv("MANT_SIMD", "scalar", 1);
    setSimdPath(bestSimdPath());
    EXPECT_EQ(activeSimdPath(), bestSimdPath());
    setSimdPath(SimdPath::Auto);
    EXPECT_EQ(activeSimdPath(), SimdPath::Scalar);
}

TEST(SimdDispatch, OpsForPinsBackend)
{
    SimdEnvGuard env;
    EXPECT_STREQ(simdOpsFor(SimdPath::Scalar).name, "scalar");
    EXPECT_STREQ(simdOpsFor(SimdPath::Auto).name,
                 simdPathName(activeSimdPath()));
}

/* ------------------------------------------------------------------ */
/* Raw kernel parity (edge lengths, tails, widen blocks)               */
/* ------------------------------------------------------------------ */

TEST(SimdKernels, RoundClampMatchesStdRoundOnTies)
{
    SimdEnvGuard env;
    // Exact .5 ties and near-tie neighbours, both signs.
    std::vector<float> in;
    for (float v : {0.5f, -0.5f, 1.5f, -1.5f, 2.5f, 126.5f, -126.5f,
                    0.49999997f, -0.49999997f, 7.5f, -7.5f, 0.0f})
        in.push_back(v);
    while (in.size() % 8 != 3) // force a vector body plus a tail
        in.push_back(static_cast<float>(in.size()) * 0.3f);

    const SimdOps &wide = simdOpsFor(bestSimdPath());
    std::vector<int8_t> codes(in.size());
    wide.quantizeRoundClamp(in.data(), codes.data(),
                            static_cast<int64_t>(in.size()), 1.0f, 127);
    for (size_t i = 0; i < in.size(); ++i) {
        const float expect =
            std::clamp(std::round(in[i]), -127.0f, 127.0f);
        EXPECT_EQ(static_cast<float>(codes[i]), expect)
            << "in=" << in[i];
    }
}

TEST(SimdKernels, RoundClampDequantPreservesNegativeZero)
{
    SimdEnvGuard env;
    // round(x) for x in (-0.5, -0.0] is -0.0; a naive "t + masked 0"
    // vector adjustment collapses it to +0.0 and breaks bit-parity
    // even though the values compare equal (this was a real bug the
    // parity suite caught via memcmp).
    std::vector<float> in(16, 0.0f);
    in[0] = -0.3f;
    in[1] = -0.0f;
    in[2] = -0.49f;
    in[9] = -0.3f; // also hit the vector body's second half
    for (SimdPath path : {SimdPath::Scalar, bestSimdPath()}) {
        std::vector<float> out(in.size(), 1.0f);
        simdOpsFor(path).roundClampDequant(
            in.data(), out.data(), static_cast<int64_t>(in.size()),
            1.0f, 7.0f);
        for (size_t i = 0; i < in.size(); ++i) {
            const float expect =
                std::clamp(std::round(in[i]), -7.0f, 7.0f) * 1.0f;
            EXPECT_EQ(std::signbit(out[i]), std::signbit(expect))
                << simdPathName(path) << " i=" << i;
            EXPECT_EQ(out[i], expect)
                << simdPathName(path) << " i=" << i;
        }
    }
}

TEST(SimdKernels, AbsMaxIgnoresNaNLikeScalar)
{
    SimdEnvGuard env;
    // std::max(m, fabs(x)) ignores a NaN candidate; the wide maxes
    // must neither propagate a NaN nor let one discard the running
    // maximum (maxps returns its second operand on unordered compares
    // — a wrong operand order zeroed out everything seen before the
    // NaN lane).
    const float nan = std::numeric_limits<float>::quiet_NaN();
    std::vector<float> x(21, 1.0f);
    x[0] = -100.0f;
    x[8] = nan;
    x[15] = nan;
    x[20] = 50.0f;
    for (SimdPath path : {SimdPath::Scalar, bestSimdPath()}) {
        const float m = simdOpsFor(path).absMax(
            x.data(), static_cast<int64_t>(x.size()));
        EXPECT_EQ(m, 100.0f) << simdPathName(path);
    }
}

TEST(SimdKernels, RoundClampCollapsesNaNDeterministically)
{
    SimdEnvGuard env;
    // std::clamp would propagate a NaN (and casting it to int8 is
    // UB); the kernels instead use the maxps/minps select form, which
    // collapses NaN to -maxq identically on every backend.
    const float nan = std::numeric_limits<float>::quiet_NaN();
    std::vector<float> in(11, 2.25f);
    in[1] = nan;
    in[9] = nan;
    for (SimdPath path : {SimdPath::Scalar, bestSimdPath()}) {
        const SimdOps &ops = simdOpsFor(path);
        std::vector<int8_t> codes(in.size());
        ops.quantizeRoundClamp(in.data(), codes.data(),
                               static_cast<int64_t>(in.size()), 1.0f,
                               7);
        std::vector<float> out(in.size());
        ops.roundClampDequant(in.data(), out.data(),
                              static_cast<int64_t>(in.size()), 1.0f,
                              7.0f);
        for (size_t i = 0; i < in.size(); ++i) {
            const float expect = std::isnan(in[i]) ? -7.0f : 2.0f;
            EXPECT_EQ(static_cast<float>(codes[i]), expect)
                << simdPathName(path) << " i=" << i;
            EXPECT_EQ(out[i], expect)
                << simdPathName(path) << " i=" << i;
        }
    }
}

TEST(SimdKernels, DequantizeHostileCoefficientStaysInBounds)
{
    SimdEnvGuard env;
    // fromParts validates sizes only, so metadata may carry a
    // coefficient above the 7-bit wire-format range; dequantize must
    // treat it as an in-bounds table lookup producing the same
    // arithmetic values as mantCodeValue, on every backend.
    std::vector<int8_t> codes(16);
    for (int i = 0; i < 16; ++i)
        codes[static_cast<size_t>(i)] = static_cast<int8_t>(i);
    std::vector<MantGroupMeta> meta(1);
    meta[0].scale = 0.5f;
    meta[0].a = 200;
    meta[0].isInt = false;
    for (SimdPath path : {SimdPath::Scalar, bestSimdPath()}) {
        const Tensor out = withPath(path, 1, [&] {
            return MantQuantizedMatrix::fromParts(1, 16, 16, codes,
                                                  meta)
                .dequantize();
        });
        for (int c = 0; c < 16; ++c) {
            EXPECT_EQ(out[c],
                      static_cast<float>(mantCodeValue(
                          200, static_cast<MantCode>(c))) *
                          0.5f)
                << simdPathName(path) << " code=" << c;
        }
    }
}

TEST(SimdKernels, NearestLevelEncodeMatchesScalarEverywhere)
{
    SimdEnvGuard env;
    const SimdOps &scalar = simdOpsFor(SimdPath::Scalar);
    const SimdOps &wide = simdOpsFor(bestSimdPath());
    const NumericFormat *formats[] = {&int4Format(),  &int8Format(),
                                      &pot4Format(),  &flint4Format(),
                                      &nf4Format(),   &mxfp4Format()};
    Rng rng(991);
    for (const NumericFormat *fmt : formats) {
        const auto levels = fmt->levels();
        std::vector<float> in;
        // Adversarial probes: exact levels and exact midpoints...
        for (size_t i = 0; i < levels.size(); ++i) {
            in.push_back(levels[i]);
            if (i + 1 < levels.size())
                in.push_back(0.5f * (levels[i] + levels[i + 1]));
        }
        // ...plus out-of-range and random fill.
        in.push_back(levels.front() - 3.0f);
        in.push_back(levels.back() + 3.0f);
        for (int i = 0; i < 133; ++i)
            in.push_back(static_cast<float>(rng.gaussian(0.0, 4.0)));

        const int64_t n = static_cast<int64_t>(in.size());
        std::vector<float> outA(in.size()), outB(in.size());
        const double errA = scalar.quantizeUnit(
            in.data(), outA.data(), n, levels.data(),
            static_cast<int>(levels.size()), 1.0f);
        const double errB = wide.quantizeUnit(
            in.data(), outB.data(), n, levels.data(),
            static_cast<int>(levels.size()), 1.0f);
        EXPECT_TRUE(bytesEqual(outA, outB)) << fmt->name();
        EXPECT_EQ(errA, errB) << fmt->name();
    }
}

TEST(SimdKernels, IntegerDotsCrossWidenBlocks)
{
    SimdEnvGuard env;
    const SimdOps &scalar = simdOpsFor(SimdPath::Scalar);
    const SimdOps &wide = simdOpsFor(bestSimdPath());
    // Longer than the 2^16 int32->int64 widen block, with a ragged
    // tail; worst-case magnitudes so lane overflow would be caught.
    const int64_t n = (int64_t{1} << 16) + 77;
    std::vector<int8_t> x(static_cast<size_t>(n)), w(x.size()),
        codes(x.size());
    Rng rng(992);
    for (int64_t i = 0; i < n; ++i) {
        x[static_cast<size_t>(i)] = static_cast<int8_t>(
            static_cast<int>(rng.uniformInt(255)) - 127);
        w[static_cast<size_t>(i)] = static_cast<int8_t>(
            static_cast<int>(rng.uniformInt(15)) - 7);
        codes[static_cast<size_t>(i)] =
            static_cast<int8_t>(rng.uniformInt(16));
    }
    for (int64_t len : {int64_t{0}, int64_t{1}, int64_t{15},
                        int64_t{16}, int64_t{64}, n}) {
        EXPECT_EQ(scalar.dotInt8(x.data(), w.data(), len),
                  wide.dotInt8(x.data(), w.data(), len))
            << "len=" << len;
        const SimdPsums a =
            scalar.fusedDotMant(x.data(), codes.data(), len);
        const SimdPsums b =
            wide.fusedDotMant(x.data(), codes.data(), len);
        EXPECT_EQ(a.mac, b.mac) << "len=" << len;
        EXPECT_EQ(a.sac, b.sac) << "len=" << len;
    }
}

TEST(SimdKernels, DotF32AndAccumulateSqParity)
{
    SimdEnvGuard env;
    const SimdOps &scalar = simdOpsFor(SimdPath::Scalar);
    const SimdOps &wide = simdOpsFor(bestSimdPath());
    Rng rng(993);
    for (int64_t n : {int64_t{0}, int64_t{1}, int64_t{7}, int64_t{8},
                      int64_t{9}, int64_t{1023}}) {
        std::vector<float> x(static_cast<size_t>(n)), w(x.size());
        for (auto &v : x)
            v = static_cast<float>(rng.gaussian());
        for (auto &v : w)
            v = static_cast<float>(rng.gaussian());
        const double a = scalar.dotF32(x.data(), w.data(), n);
        const double b = wide.dotF32(x.data(), w.data(), n);
        EXPECT_EQ(a, b) << "n=" << n;

        std::vector<double> accA(x.size(), 0.125);
        std::vector<double> accB(x.size(), 0.125);
        scalar.accumulateSq(x.data(), accA.data(), n);
        wide.accumulateSq(x.data(), accB.data(), n);
        EXPECT_EQ(accA, accB) << "n=" << n;
    }
}

/* ------------------------------------------------------------------ */
/* Engine-level parity: scalar vs best path, 1 and 8 threads           */
/* ------------------------------------------------------------------ */

void
expectStatsIdentical(const QuantStats &a, const QuantStats &b,
                     const std::string &what)
{
    EXPECT_EQ(a.mse, b.mse) << what;
    EXPECT_EQ(a.nmse, b.nmse) << what;
    EXPECT_EQ(a.unitCount, b.unitCount) << what;
    EXPECT_EQ(a.metaBits, b.metaBits) << what;
    EXPECT_EQ(a.formatCounts, b.formatCounts) << what;
}

TEST(SimdParity, FixedFormatsAcrossGroupSizesAndThreads)
{
    SimdEnvGuard env;
    const Tensor t = test::gaussianTensor(Shape{16, 200}, 501);
    const NumericFormat *formats[] = {&int4Format(),  &int8Format(),
                                      &pot4Format(),  &flint4Format(),
                                      &nf4Format(),   &mxfp4Format()};
    for (const NumericFormat *fmt : formats) {
        for (int64_t g : groupSizes()) {
            for (int threads : {1, 8}) {
                auto run = [&](SimdPath path) {
                    return withPath(path, threads, [&] {
                        QuantStats stats;
                        Tensor out = quantDequantFixed(
                            t, *fmt, groupCfg(g), &stats);
                        return std::make_pair(std::move(out), stats);
                    });
                };
                const auto [ref, refStats] = run(SimdPath::Scalar);
                const auto [out, stats] = run(bestSimdPath());
                const std::string what =
                    std::string(fmt->name()) + " g=" +
                    std::to_string(g) +
                    " threads=" + std::to_string(threads);
                EXPECT_TRUE(bytesEqual(ref.span(), out.span()))
                    << what;
                expectStatsIdentical(refStats, stats, what);
            }
        }
    }
}

TEST(SimdParity, AdaptiveSelectionAndOutput)
{
    SimdEnvGuard env;
    const Tensor t = test::gaussianTensor(Shape{16, 200}, 502);
    for (int64_t g : groupSizes()) {
        for (int threads : {1, 8}) {
            auto run = [&](SimdPath path) {
                return withPath(path, threads, [&] {
                    QuantStats stats;
                    Tensor out = quantDequantAdaptive(
                        t, antTypeSet(), groupCfg(g), &stats);
                    return std::make_pair(std::move(out), stats);
                });
            };
            const auto [ref, refStats] = run(SimdPath::Scalar);
            const auto [out, stats] = run(bestSimdPath());
            const std::string what = "g=" + std::to_string(g) +
                                     " threads=" +
                                     std::to_string(threads);
            EXPECT_TRUE(bytesEqual(ref.span(), out.span())) << what;
            expectStatsIdentical(refStats, stats, what);
        }
    }
}

TEST(SimdParity, KMeansCodebookSnap)
{
    SimdEnvGuard env;
    const Tensor t = test::gaussianTensor(Shape{8, 200}, 503);
    for (int64_t g : {int64_t{-1}, int64_t{32}, int64_t{40}}) {
        auto run = [&](SimdPath path) {
            return withPath(path, 8, [&] {
                return quantDequantKMeans(t, 16, groupCfg(g));
            });
        };
        const Tensor ref = run(SimdPath::Scalar);
        const Tensor out = run(bestSimdPath());
        EXPECT_TRUE(bytesEqual(ref.span(), out.span()))
            << "g=" << g;
    }
}

TEST(SimdParity, MantPackedStreamsBitIdentical)
{
    SimdEnvGuard env;
    const Tensor w = test::gaussianTensor(Shape{24, 200}, 504, 0.02);
    // Per-column calibration power for the OutputMse search mode.
    std::vector<double> power(200);
    Rng rng(505);
    for (auto &p : power)
        p = 0.01 + std::fabs(rng.gaussian());

    for (int64_t g : groupSizes()) {
        for (const bool outputMse : {false, true}) {
            auto stream = [&](SimdPath path) {
                return withPath(path, 8, [&] {
                    const MantQuantizedMatrix q =
                        MantQuantizedMatrix::quantize(
                            w, g,
                            outputMse
                                ? MantQuantizedMatrix::Search::OutputMse
                                : MantQuantizedMatrix::Search::WeightMse,
                            outputMse ? std::span<const double>(power)
                                      : std::span<const double>{});
                    std::ostringstream os;
                    writePacked(os, pack(q));
                    return os.str();
                });
            };
            EXPECT_EQ(stream(SimdPath::Scalar), stream(bestSimdPath()))
                << "g=" << g << " outputMse=" << outputMse;
        }
    }
}

TEST(SimdParity, FusedGemmDequantizeAndActivations)
{
    SimdEnvGuard env;
    const Tensor w = test::gaussianTensor(Shape{24, 200}, 506, 0.02);
    const Tensor x = test::gaussianTensor(Shape{5, 200}, 507);
    for (int64_t g : groupSizes()) {
        for (int threads : {1, 8}) {
            auto run = [&](SimdPath path) {
                return withPath(path, threads, [&] {
                    const MantQuantizedMatrix qw =
                        MantQuantizedMatrix::quantize(w, g);
                    const auto qx =
                        Int8QuantizedActivations::quantize(x, g);
                    std::vector<Tensor> r;
                    r.push_back(fusedGemm(qx, qw));
                    r.push_back(qw.dequantize());
                    r.push_back(qx.dequantize());
                    return r;
                });
            };
            const auto ref = run(SimdPath::Scalar);
            const auto out = run(bestSimdPath());
            for (size_t i = 0; i < ref.size(); ++i) {
                EXPECT_TRUE(
                    bytesEqual(ref[i].span(), out[i].span()))
                    << "g=" << g << " threads=" << threads
                    << " tensor=" << i;
            }
        }
    }
}

TEST(SimdParity, LinearNTBitIdentical)
{
    SimdEnvGuard env;
    const Tensor x = test::gaussianTensor(Shape{7, 300}, 508);
    const Tensor w = test::gaussianTensor(Shape{13, 300}, 509);
    for (int threads : {1, 8}) {
        auto run = [&](SimdPath path) {
            return withPath(path, threads,
                            [&] { return linearNT(x, w); });
        };
        const Tensor ref = run(SimdPath::Scalar);
        const Tensor out = run(bestSimdPath());
        EXPECT_TRUE(bytesEqual(ref.span(), out.span()))
            << "threads=" << threads;
    }
}

TEST(SimdParity, CalibrationAccumulateBitIdentical)
{
    SimdEnvGuard env;
    const Tensor x = test::gaussianTensor(Shape{40, 700}, 510);
    auto run = [&](SimdPath path) {
        return withPath(path, 8, [&] {
            ModelCalibration calib;
            calib.accumulate(0, LinearSlot::AttnIn, x);
            calib.accumulate(0, LinearSlot::AttnIn, x);
            calib.finalize();
            const auto p = calib.power(0, LinearSlot::AttnIn);
            return std::vector<double>(p.begin(), p.end());
        });
    };
    EXPECT_EQ(run(SimdPath::Scalar), run(bestSimdPath()));
}

TEST(SimdParity, BaselinesUnderThreadsMatchSerial)
{
    SimdEnvGuard env;
    // OliVe and Tender are threaded now; parity here is across both
    // the SIMD path and the thread count in one sweep.
    const Tensor t = test::gaussianTensor(Shape{16, 200}, 511);
    auto runOlive = [&](SimdPath path, int threads) {
        return withPath(path, threads, [&] {
            OliveConfig ocfg;
            ocfg.bits = 4;
            return quantDequantOlive(t, ocfg, groupCfg(64));
        });
    };
    auto runTender = [&](SimdPath path, int threads) {
        return withPath(path, threads, [&] {
            TenderConfig tcfg;
            tcfg.bits = 4;
            return quantDequantTender(t, tcfg, true);
        });
    };
    const Tensor oliveRef = runOlive(SimdPath::Scalar, 1);
    const Tensor tenderRef = runTender(SimdPath::Scalar, 1);
    for (int threads : {2, 8}) {
        EXPECT_TRUE(bytesEqual(
            oliveRef.span(),
            runOlive(bestSimdPath(), threads).span()))
            << "threads=" << threads;
        EXPECT_TRUE(bytesEqual(
            tenderRef.span(),
            runTender(bestSimdPath(), threads).span()))
            << "threads=" << threads;
    }
}

} // namespace
} // namespace mant
