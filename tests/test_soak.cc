/**
 * @file
 * Randomized serving soak: a few hundred ServingEngine requests with
 * counter-seeded randomized prompts, budgets, stop tokens, submission
 * waves (join/retire churn), and quant setups, each request
 * checksummed against the independent serial oracle
 * (bench::serialGreedyOracle, bench/bench_util.h).
 *
 * Where tests/test_serving.cc pins a small hand-picked request mix at
 * every SIMD × thread setting, this suite throws volume at one
 * setting: randomized shapes the curated mix never reaches (prompt
 * lengths, budgets, stop-token truncation, wave-interleaved
 * admission). Every random draw flows through Rng seeded from an
 * explicit counter, so any failure reproduces from the printed seed.
 *
 * Registered with ctest label "soak" so the sanitizer presets exclude
 * it (CMakePresets.json): under ASan/TSan the request volume would
 * dominate the job's wall clock without adding coverage the
 * deterministic serving suite lacks.
 */

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "bench_util.h"
#include "model/quant_setup.h"
#include "serve/serving_engine.h"
#include "test_util.h"

namespace mant {
namespace {

/** FNV-1a over a token stream; the per-run comparison summary. */
uint64_t
fnv1a(uint64_t h, std::span<const int32_t> tokens)
{
    for (const int32_t t : tokens) {
        h ^= static_cast<uint64_t>(static_cast<uint32_t>(t));
        h *= 0x100000001b3ULL;
    }
    return h;
}

struct SoakCase
{
    std::vector<int32_t> prompt;
    int64_t maxNewTokens = 0;
    int32_t stopToken = -1;
};

/** One counter-seeded randomized request. */
SoakCase
randomCase(uint64_t seed, int64_t vocab)
{
    Rng rng(seed);
    SoakCase c;
    const int len = 1 + static_cast<int>(rng.uniformInt(7));
    c.prompt.resize(static_cast<size_t>(len));
    for (auto &t : c.prompt)
        t = static_cast<int32_t>(
            rng.uniformInt(static_cast<uint64_t>(vocab)));
    c.maxNewTokens = 1 + static_cast<int64_t>(rng.uniformInt(8));
    // A third of the requests carry a stop token; with the tiny vocab
    // some of them genuinely truncate, exercising early retirement.
    if (rng.uniformInt(3) == 0)
        c.stopToken = static_cast<int32_t>(
            rng.uniformInt(static_cast<uint64_t>(vocab)));
    return c;
}

/** Engine semantics applied to the oracle's stop-free stream: keep
 *  tokens up to and including the first stop-token hit. */
std::vector<int32_t>
truncateAtStop(std::vector<int32_t> tokens, int32_t stopToken)
{
    if (stopToken < 0)
        return tokens;
    const auto hit =
        std::find(tokens.begin(), tokens.end(), stopToken);
    if (hit != tokens.end())
        tokens.erase(hit + 1, tokens.end());
    return tokens;
}

/**
 * Run `numRequests` randomized requests through a ServingEngine in
 * counter-seeded submission waves, then checksum every output against
 * the serial oracle. Serial runs first on the model's default stream;
 * the engine never touches that stream, so one model serves both.
 */
void
soakSetup(const ModelWeights &weights, const QuantSetup &setup,
          int numRequests, uint64_t seedBase)
{
    const int64_t vocab = weights.profile.simDims.vocab;
    Transformer model(weights, setup);

    std::vector<SoakCase> cases;
    cases.reserve(static_cast<size_t>(numRequests));
    for (int i = 0; i < numRequests; ++i)
        cases.push_back(
            randomCase(seedBase + static_cast<uint64_t>(i), vocab));

    uint64_t serialSum = 0xcbf29ce484222325ULL;
    std::vector<std::vector<int32_t>> expected;
    expected.reserve(cases.size());
    for (const SoakCase &c : cases) {
        expected.push_back(truncateAtStop(
            bench::serialGreedyOracle(model, c.prompt,
                                      c.maxNewTokens),
            c.stopToken));
        serialSum = fnv1a(serialSum, expected.back());
    }

    // Wave-interleaved submission: a counter-seeded slice of requests
    // joins, the engine steps a random number of rounds, repeat — so
    // streams retire and join mid-batch throughout the run.
    ServingEngine engine(model, ServingConfig{.maxStreams = 5});
    Rng waves(seedBase ^ 0x5057414b45ULL); // "soak waves" salt
    std::vector<RequestId> ids;
    size_t submitted = 0;
    while (submitted < cases.size() || !engine.idle()) {
        if (submitted < cases.size()) {
            const size_t wave = std::min(
                cases.size() - submitted,
                static_cast<size_t>(1 + waves.uniformInt(8)));
            for (size_t i = 0; i < wave; ++i, ++submitted) {
                GenRequest req;
                req.prompt = cases[submitted].prompt;
                req.maxNewTokens = cases[submitted].maxNewTokens;
                req.stopToken = cases[submitted].stopToken;
                ids.push_back(engine.submit(std::move(req)));
            }
        }
        const uint64_t rounds = 1 + waves.uniformInt(4);
        for (uint64_t r = 0; r < rounds && engine.step(); ++r) {
        }
    }

    uint64_t engineSum = 0xcbf29ce484222325ULL;
    int mismatches = 0;
    for (size_t i = 0; i < ids.size(); ++i) {
        ASSERT_EQ(engine.state(ids[i]), RequestState::Done);
        const auto &out = engine.output(ids[i]);
        engineSum = fnv1a(engineSum, out);
        if (out != expected[i] && mismatches++ < 3)
            ADD_FAILURE() << "request " << i << " (seed "
                          << seedBase + static_cast<uint64_t>(i)
                          << ") diverged from the serial oracle";
    }
    EXPECT_EQ(mismatches, 0);
    EXPECT_EQ(engineSum, serialSum)
        << "token checksum diverged for setup " << setup.label
        << " (seed base " << seedBase << ")";
}

class SoakTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        profile_ = test::tinyProfile();
        weights_ = ModelWeights::generate(profile_, 128);
    }

    ModelProfile profile_;
    ModelWeights weights_;
};

TEST_F(SoakTest, FusedLinearSetupHundredRequests)
{
    soakSetup(weights_, mantFusedSetup(64), 100, 51000);
}

TEST_F(SoakTest, FullQuantSetupHundredRequests)
{
    soakSetup(weights_, mantFullSetup(), 100, 52000);
}

TEST_F(SoakTest, FusedAttentionSetupHundredRequests)
{
    // The tentpole path under load: integer attention over captured
    // KV codes inside the batched scheduler.
    soakSetup(weights_, mantFusedAttentionSetup(), 100, 53000);
}

// --- paged-engine fragmentation/churn soak ---------------------------

struct PagedCase
{
    SoakCase base;
    int32_t priority = 0;
    int64_t tokenBudget = 0; ///< 0 = uncapped
};

/** Ragged paged-soak request: longer prompts than the base soak (so
 *  chunked prefill always has work), random priorities (reordering
 *  admission, never tokens), and a sprinkle of token budgets — some
 *  leaving zero generation room (instant completion). */
PagedCase
randomPagedCase(uint64_t seed, int64_t vocab)
{
    Rng rng(seed);
    PagedCase c;
    const int len = 1 + static_cast<int>(rng.uniformInt(24));
    c.base.prompt.resize(static_cast<size_t>(len));
    for (auto &t : c.base.prompt)
        t = static_cast<int32_t>(
            rng.uniformInt(static_cast<uint64_t>(vocab)));
    c.base.maxNewTokens = 1 + static_cast<int64_t>(rng.uniformInt(12));
    if (rng.uniformInt(3) == 0)
        c.base.stopToken = static_cast<int32_t>(
            rng.uniformInt(static_cast<uint64_t>(vocab)));
    c.priority = static_cast<int32_t>(rng.uniformInt(4));
    if (rng.uniformInt(4) == 0)
        c.tokenBudget = len + static_cast<int64_t>(rng.uniformInt(10));
    return c;
}

/** The oracle-side effect of a token budget: at most
 *  (budget - promptLen) generated tokens, empty when no room. */
std::vector<int32_t>
truncateToBudget(std::vector<int32_t> tokens, int64_t promptLen,
                 int64_t budget)
{
    if (budget <= 0)
        return tokens;
    const int64_t room = budget - promptLen;
    if (room < static_cast<int64_t>(tokens.size()))
        tokens.resize(static_cast<size_t>(std::max<int64_t>(room, 0)));
    return tokens;
}

TEST_F(SoakTest, PagedEngineChurnMatchesSerialOracle)
{
    // 320 ragged requests through the fully-paged configuration:
    // chunked prefill (chunk 5 straddles every panel boundary), a
    // bounded shared page pool, a low admission watermark, priority
    // scheduling with aging, and random token budgets. Every output
    // is FNV-checksummed against the serial oracle — the scheduler
    // may only ever change WHEN tokens are computed.
    //
    // Pool sizing: with 24 + 12 = 36 max rows per stream, group 16,
    // headDim 32, a stream tops out at 5 pages per head cache × 4
    // caches = 20 pages; 6 slots × 20 = 120 < 128, so the cap can
    // never be exhausted mid-decode and the watermark stays pure
    // backpressure (the documented sizing rule).
    const QuantSetup setup = mantFusedAttentionSetup(16);
    const int64_t vocab = profile_.simDims.vocab;
    const uint64_t seedBase = 54000;
    const int numRequests = 320;
    Transformer model(weights_, setup);

    std::vector<PagedCase> cases;
    cases.reserve(numRequests);
    for (int i = 0; i < numRequests; ++i)
        cases.push_back(randomPagedCase(
            seedBase + static_cast<uint64_t>(i), vocab));

    uint64_t serialSum = 0xcbf29ce484222325ULL;
    std::vector<std::vector<int32_t>> expected;
    expected.reserve(cases.size());
    for (const PagedCase &c : cases) {
        auto tokens = truncateToBudget(
            truncateAtStop(
                bench::serialGreedyOracle(model, c.base.prompt,
                                          c.base.maxNewTokens),
                c.base.stopToken),
            static_cast<int64_t>(c.base.prompt.size()),
            c.tokenBudget);
        serialSum = fnv1a(serialSum, tokens);
        expected.push_back(std::move(tokens));
    }

    ServingConfig cfg;
    cfg.maxStreams = 6;
    cfg.prefillChunkTokens = 5;
    cfg.pagePoolPages = 128;
    cfg.freePageWatermark = 12;
    cfg.agingSteps = 3;
    ServingEngine engine(model, cfg);
    ASSERT_NE(engine.pagePool(), nullptr);

    Rng waves(seedBase ^ 0x5057414b45ULL);
    std::vector<RequestId> ids;
    size_t submitted = 0;
    while (submitted < cases.size() || !engine.idle()) {
        if (submitted < cases.size()) {
            const size_t wave = std::min(
                cases.size() - submitted,
                static_cast<size_t>(1 + waves.uniformInt(8)));
            for (size_t i = 0; i < wave; ++i, ++submitted) {
                GenRequest req;
                req.prompt = cases[submitted].base.prompt;
                req.maxNewTokens = cases[submitted].base.maxNewTokens;
                req.stopToken = cases[submitted].base.stopToken;
                req.priority = cases[submitted].priority;
                req.tokenBudget = cases[submitted].tokenBudget;
                ids.push_back(engine.submit(std::move(req)));
            }
        }
        const uint64_t rounds = 1 + waves.uniformInt(4);
        for (uint64_t r = 0; r < rounds && engine.step(); ++r) {
        }
    }

    uint64_t engineSum = 0xcbf29ce484222325ULL;
    int mismatches = 0;
    for (size_t i = 0; i < ids.size(); ++i) {
        ASSERT_EQ(engine.state(ids[i]), RequestState::Done);
        const auto &out = engine.output(ids[i]);
        engineSum = fnv1a(engineSum, out);
        if (out != expected[i] && mismatches++ < 3)
            ADD_FAILURE() << "request " << i << " (seed "
                          << seedBase + static_cast<uint64_t>(i)
                          << ") diverged from the serial oracle";
    }
    EXPECT_EQ(mismatches, 0);
    EXPECT_EQ(engineSum, serialSum)
        << "paged-churn token checksum diverged (seed base "
        << seedBase << ")";

    // No leaked pages after ~320 retire cycles, and the pool honored
    // its cap throughout the churn.
    const KvPageAllocator &pool = *engine.pagePool();
    EXPECT_EQ(pool.inUsePages(), 0);
    EXPECT_LE(pool.peakInUsePages(), cfg.pagePoolPages);
    EXPECT_LE(pool.createdPages(), cfg.pagePoolPages);
    EXPECT_EQ(engine.stats().peakPagesInUse, pool.peakInUsePages());
    EXPECT_EQ(engine.stats().prefills,
              static_cast<int64_t>(ids.size()) -
                  std::count_if(expected.begin(), expected.end(),
                                [](const auto &e) {
                                    return e.empty();
                                }));
    if (cfg.prefillChunkTokens > 0) {
        EXPECT_LE(engine.stats().maxPrefillTokensPerStep,
                  cfg.prefillChunkTokens * cfg.maxStreams);
    }
}

// --- fault-injected preemption soak ----------------------------------

TEST_F(SoakTest, FaultInjectedPreemptionSoakMatchesSerialOracle)
{
    // The failure model under volume: 320 ragged requests against a
    // pool sized WAY below the active set's worst case (6 slots × ~20
    // pages vs a 48-page cap → continuous eviction storms), recurring
    // injected allocation-fault storms on top, and counter-seeded
    // random cancels and round-deadlines racing the scheduler. The
    // engine must never let an exception escape step(), every request
    // must end terminal, every Done output must checksum-match the
    // serial oracle, and every Cancelled/Expired output must be an
    // exact oracle prefix — preemption, replay, faults, and lifecycle
    // exits may only ever change WHEN tokens are computed, or how
    // many, never their values.
    const QuantSetup setup = mantFusedAttentionSetup(16);
    const int64_t vocab = profile_.simDims.vocab;
    const uint64_t seedBase = 55000;
    const int numRequests = 320;
    Transformer model(weights_, setup);

    std::vector<PagedCase> cases;
    cases.reserve(numRequests);
    for (int i = 0; i < numRequests; ++i)
        cases.push_back(randomPagedCase(
            seedBase + static_cast<uint64_t>(i), vocab));

    std::vector<std::vector<int32_t>> expected;
    expected.reserve(cases.size());
    for (const PagedCase &c : cases)
        expected.push_back(truncateToBudget(
            truncateAtStop(
                bench::serialGreedyOracle(model, c.base.prompt,
                                          c.base.maxNewTokens),
                c.base.stopToken),
            static_cast<int64_t>(c.base.prompt.size()),
            c.tokenBudget));

    ServingConfig cfg;
    cfg.maxStreams = 6;
    cfg.prefillChunkTokens = 5;
    cfg.pagePoolPages = 48;
    cfg.faults.failNthAlloc = 123;
    cfg.faults.failPeriod = 17;
    cfg.faults.failLen = 2;
    ServingEngine engine(model, cfg);
    ASSERT_NE(engine.pagePool(), nullptr);

    Rng waves(seedBase ^ 0x5057414b45ULL);
    std::vector<RequestId> ids;
    size_t submitted = 0;
    int64_t cancelsIssued = 0;
    int guard = 0;
    while (submitted < cases.size() || !engine.idle()) {
        if (submitted < cases.size()) {
            const size_t wave = std::min(
                cases.size() - submitted,
                static_cast<size_t>(1 + waves.uniformInt(8)));
            for (size_t i = 0; i < wave; ++i, ++submitted) {
                GenRequest req;
                req.prompt = cases[submitted].base.prompt;
                req.maxNewTokens = cases[submitted].base.maxNewTokens;
                req.stopToken = cases[submitted].base.stopToken;
                req.priority = cases[submitted].priority;
                req.tokenBudget = cases[submitted].tokenBudget;
                // One request in six carries a round-deadline tight
                // enough that some expire mid-generation and some
                // (submitted into a drained queue) finish first.
                if (waves.uniformInt(6) == 0)
                    req.deadlineSteps =
                        10 + static_cast<int64_t>(waves.uniformInt(60));
                ids.push_back(engine.submit(std::move(req)));
            }
        }
        // Random cancels race everything else: the target may be
        // queued, active, preempted, or already terminal (a no-op).
        if (!ids.empty() && waves.uniformInt(4) == 0) {
            const RequestId victim = ids[static_cast<size_t>(
                waves.uniformInt(ids.size()))];
            cancelsIssued += engine.cancel(victim) ? 1 : 0;
        }
        const uint64_t rounds = 1 + waves.uniformInt(4);
        for (uint64_t r = 0; r < rounds; ++r) {
            bool more = true;
            ASSERT_NO_THROW(more = engine.step());
            if (!more)
                break;
        }
        ASSERT_LT(++guard, 50000) << "soak failed to converge";
    }

    // Every request is terminal; Done outputs checksum against the
    // oracle, early exits are exact oracle prefixes.
    uint64_t engineSum = 0xcbf29ce484222325ULL;
    uint64_t serialSum = 0xcbf29ce484222325ULL;
    int mismatches = 0;
    int64_t done = 0;
    for (size_t i = 0; i < ids.size(); ++i) {
        const RequestState s = engine.state(ids[i]);
        ASSERT_TRUE(isTerminal(s)) << "request " << i;
        ASSERT_NE(s, RequestState::Failed) << "request " << i
            << ": the pool fits any single stream, so nothing may "
               "genuinely fail";
        const auto &out = engine.output(ids[i]);
        if (s == RequestState::Done) {
            ++done;
            engineSum = fnv1a(engineSum, out);
            serialSum = fnv1a(serialSum, expected[i]);
            if (out != expected[i] && mismatches++ < 3)
                ADD_FAILURE()
                    << "request " << i << " (seed "
                    << seedBase + static_cast<uint64_t>(i)
                    << ") diverged from the serial oracle";
        } else {
            ASSERT_LE(out.size(), expected[i].size())
                << "request " << i;
            if (!std::equal(out.begin(), out.end(),
                            expected[i].begin()) &&
                mismatches++ < 3)
                ADD_FAILURE() << "request " << i
                              << ": partial output is not an oracle "
                                 "prefix";
        }
    }
    EXPECT_EQ(mismatches, 0);
    EXPECT_EQ(engineSum, serialSum);

    // The storm machinery genuinely ran: injected faults fired,
    // eviction recovered real work, cancels and deadlines both hit,
    // and most of the load still completed.
    const auto &st = engine.stats();
    EXPECT_GE(engine.pagePool()->injectedFaults(), 1);
    EXPECT_GE(st.evictions, 1);
    EXPECT_GT(st.recomputedTokens, 0);
    EXPECT_EQ(st.cancelled, cancelsIssued);
    EXPECT_GE(st.expired, 1);
    EXPECT_EQ(st.failed, 0);
    EXPECT_GT(done, numRequests / 2);
    EXPECT_EQ(st.cancelled + st.expired + done,
              static_cast<int64_t>(ids.size()));

    // No pages leaked through ~hundreds of evict/replay/cancel/expire
    // cycles, and the cap held.
    const KvPageAllocator &pool = *engine.pagePool();
    EXPECT_EQ(pool.inUsePages(), 0);
    EXPECT_LE(pool.peakInUsePages(), cfg.pagePoolPages);
    EXPECT_EQ(st.peakPagesInUse, pool.peakInUsePages());
}

} // namespace
} // namespace mant
