#include <cmath>

#include <gtest/gtest.h>

#include "tensor/stats.h"
#include "test_util.h"

namespace mant {
namespace {

TEST(StreamingStats, BasicMoments)
{
    StreamingStats s;
    for (float v : {1.0f, 2.0f, 3.0f, 4.0f})
        s.add(v);
    EXPECT_EQ(s.count(), 4);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.variance(), 1.25); // population variance
    EXPECT_DOUBLE_EQ(s.maxAbs(), 4.0);
}

TEST(StreamingStats, Eq7Identity)
{
    // variance == E[x^2] - E[x]^2 exactly as Eq. (7) computes it.
    StreamingStats s;
    const float xs[] = {0.5f, -1.25f, 2.0f, 0.0f, -0.75f};
    s.addAll(xs);
    double sum = 0.0, sum_sq = 0.0;
    for (float x : xs) {
        sum += x;
        sum_sq += static_cast<double>(x) * x;
    }
    const double n = 5.0;
    EXPECT_NEAR(s.variance(), sum_sq / n - (sum / n) * (sum / n), 1e-12);
}

TEST(StreamingStats, NormalizedVarianceScaleInvariant)
{
    StreamingStats a, b;
    const float xs[] = {0.1f, -0.4f, 0.9f, -0.2f};
    for (float x : xs) {
        a.add(x);
        b.add(x * 100.0f);
    }
    EXPECT_NEAR(a.normalizedVariance(), b.normalizedVariance(),
                1e-6 * a.normalizedVariance());
}

TEST(StreamingStats, MergeEqualsConcatenation)
{
    StreamingStats all, left, right;
    const float xs[] = {1, -2, 3, -4, 5, -6};
    for (int i = 0; i < 6; ++i) {
        all.add(xs[i]);
        (i < 3 ? left : right).add(xs[i]);
    }
    left.merge(right);
    EXPECT_DOUBLE_EQ(left.mean(), all.mean());
    EXPECT_DOUBLE_EQ(left.variance(), all.variance());
    EXPECT_DOUBLE_EQ(left.maxAbs(), all.maxAbs());
}

TEST(StreamingStats, ResetClears)
{
    StreamingStats s;
    s.add(5.0f);
    s.reset();
    EXPECT_EQ(s.count(), 0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(StreamingStats, EmptyIsSafe)
{
    StreamingStats s;
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.normalizedVariance(), 0.0);
}

TEST(ErrorMetrics, MseBasics)
{
    const float a[] = {1, 2, 3};
    const float b[] = {1, 2, 5};
    EXPECT_NEAR(mse(a, b), 4.0 / 3.0, 1e-12);
    EXPECT_EQ(mse(a, a), 0.0);
}

TEST(ErrorMetrics, NmseNormalization)
{
    const float ref[] = {2, 0, 0};
    const float app[] = {0, 0, 0};
    EXPECT_NEAR(nmse(ref, app), 1.0, 1e-12); // all signal lost
}

TEST(ErrorMetrics, NmseZeroReference)
{
    const float zero[] = {0, 0};
    EXPECT_EQ(nmse(zero, zero), 0.0);
}

TEST(ErrorMetrics, MaxAbsDiff)
{
    const float a[] = {1, 5, -3};
    const float b[] = {1, 2, -7};
    EXPECT_EQ(maxAbsDiff(a, b), 4.0);
}

TEST(ErrorMetrics, SizeMismatchThrows)
{
    const float a[] = {1, 2};
    const float b[] = {1};
    EXPECT_THROW(mse(std::span<const float>(a),
                     std::span<const float>(b)),
                 std::invalid_argument);
}

TEST(Cdf, SortedAndNormalized)
{
    const float xs[] = {4.0f, -2.0f, 1.0f, -4.0f};
    const auto cdf = normalizedCdf(xs);
    ASSERT_EQ(cdf.size(), 4u);
    EXPECT_FLOAT_EQ(cdf.front(), -1.0f);
    EXPECT_FLOAT_EQ(cdf.back(), 1.0f);
    for (size_t i = 1; i < cdf.size(); ++i)
        EXPECT_LE(cdf[i - 1], cdf[i]);
}

TEST(Cdf, EvaluationAtQueries)
{
    const float xs[] = {-1.0f, -0.5f, 0.0f, 0.5f, 1.0f};
    const auto sorted = normalizedCdf(xs);
    const double queries[] = {-1.0, 0.0, 1.0};
    const auto vals = cdfAt(sorted, queries);
    EXPECT_NEAR(vals[0], 0.2, 1e-9); // one of five <= -1
    EXPECT_NEAR(vals[1], 0.6, 1e-9);
    EXPECT_NEAR(vals[2], 1.0, 1e-9);
}

TEST(Cdf, DiversityZeroForIdenticalSeries)
{
    const std::vector<std::vector<double>> series = {
        {0.1, 0.5, 0.9}, {0.1, 0.5, 0.9}};
    EXPECT_EQ(cdfDiversity(series), 0.0);
}

TEST(Cdf, DiversityMeasuresSpread)
{
    const std::vector<std::vector<double>> series = {
        {0.0, 0.5, 1.0}, {0.2, 0.5, 0.8}};
    EXPECT_NEAR(cdfDiversity(series), (0.2 + 0.0 + 0.2) / 3.0, 1e-12);
}

TEST(Probit, MatchesKnownQuantiles)
{
    EXPECT_NEAR(probit(0.5), 0.0, 1e-9);
    EXPECT_NEAR(probit(0.975), 1.959964, 1e-4);
    EXPECT_NEAR(probit(0.025), -1.959964, 1e-4);
    EXPECT_NEAR(probit(0.8413447), 1.0, 1e-4);
}

TEST(Probit, Symmetry)
{
    for (double p : {0.01, 0.1, 0.3, 0.45}) {
        EXPECT_NEAR(probit(p), -probit(1.0 - p), 1e-8);
    }
}

TEST(Probit, RejectsBoundary)
{
    EXPECT_THROW(probit(0.0), std::invalid_argument);
    EXPECT_THROW(probit(1.0), std::invalid_argument);
}

} // namespace
} // namespace mant
