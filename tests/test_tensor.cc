#include <gtest/gtest.h>

#include "tensor/tensor.h"
#include "test_util.h"

namespace mant {
namespace {

TEST(Tensor, ZeroInitialized)
{
    Tensor t(Shape{3, 4});
    for (int64_t i = 0; i < t.numel(); ++i)
        EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FillConstructor)
{
    Tensor t(Shape{5}, 2.5f);
    for (int64_t i = 0; i < 5; ++i)
        EXPECT_EQ(t[i], 2.5f);
}

TEST(Tensor, DataConstructorChecksSize)
{
    EXPECT_THROW(Tensor(Shape{2, 2}, std::vector<float>{1, 2, 3}),
                 std::invalid_argument);
    const Tensor t(Shape{2, 2}, {1, 2, 3, 4});
    EXPECT_EQ(t.at(1, 0), 3.0f);
}

TEST(Tensor, At2D)
{
    Tensor t(Shape{2, 3});
    t.at(1, 2) = 7.0f;
    EXPECT_EQ(t[1 * 3 + 2], 7.0f);
}

TEST(Tensor, RowSpan)
{
    Tensor t(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
    const auto row = t.row(1);
    ASSERT_EQ(row.size(), 3u);
    EXPECT_EQ(row[0], 4.0f);
    EXPECT_EQ(row[2], 6.0f);
}

TEST(Tensor, MaxAbs)
{
    const Tensor t(Shape{4}, {1.0f, -5.0f, 3.0f, 2.0f});
    EXPECT_EQ(t.maxAbs(), 5.0f);
}

TEST(Tensor, ScaleInPlace)
{
    Tensor t(Shape{3}, {1, 2, 3});
    t.scaleInPlace(2.0f);
    EXPECT_EQ(t[2], 6.0f);
}

TEST(Matmul, KnownProduct)
{
    const Tensor a(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
    const Tensor b(Shape{3, 2}, {7, 8, 9, 10, 11, 12});
    const Tensor c = matmul(a, b);
    EXPECT_EQ(c.shape(), Shape({2, 2}));
    EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
    EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
    EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
    EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Matmul, IdentityIsNoop)
{
    const Tensor a = test::gaussianTensor(Shape{4, 4}, 3);
    Tensor eye(Shape{4, 4});
    for (int64_t i = 0; i < 4; ++i)
        eye.at(i, i) = 1.0f;
    const Tensor c = matmul(a, eye);
    EXPECT_LT(test::maxDiff(a.span(), c.span()), 1e-6);
}

TEST(Matmul, ShapeMismatchThrows)
{
    const Tensor a(Shape{2, 3});
    const Tensor b(Shape{4, 2});
    EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

TEST(Matmul, AccumulateAddsToExisting)
{
    const Tensor a(Shape{1, 2}, {1, 1});
    const Tensor b(Shape{2, 1}, {2, 3});
    Tensor out(Shape{1, 1}, 10.0f);
    matmulAccum(a, b, out);
    EXPECT_FLOAT_EQ(out[0], 15.0f);
}

TEST(Transpose, RoundTrip)
{
    const Tensor a = test::gaussianTensor(Shape{3, 5}, 11);
    const Tensor att = transpose(transpose(a));
    EXPECT_EQ(att.shape(), a.shape());
    EXPECT_LT(test::maxDiff(a.span(), att.span()), 0.0f + 1e-9);
}

TEST(Transpose, Values)
{
    const Tensor a(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
    const Tensor t = transpose(a);
    EXPECT_EQ(t.shape(), Shape({3, 2}));
    EXPECT_EQ(t.at(2, 1), 6.0f);
    EXPECT_EQ(t.at(0, 1), 4.0f);
}

TEST(Sub, Elementwise)
{
    const Tensor a(Shape{3}, {5, 6, 7});
    const Tensor b(Shape{3}, {1, 2, 3});
    const Tensor c = sub(a, b);
    EXPECT_EQ(c[0], 4.0f);
    EXPECT_EQ(c[2], 4.0f);
}

TEST(Tensor, RoundToFp16InPlace)
{
    Tensor t(Shape{2}, {1.0000001f, 3.14159f});
    t.roundToFp16();
    EXPECT_EQ(t[0], 1.0f);
    EXPECT_NEAR(t[1], 3.14159f, 3.14159f * 0x1.0p-10);
}

/** Property sweep: matmul against a naive triple loop. */
class MatmulParamTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{};

TEST_P(MatmulParamTest, MatchesNaive)
{
    const auto [m, k, n] = GetParam();
    const Tensor a = test::gaussianTensor(
        Shape{m, k}, static_cast<uint64_t>(m * 31 + k));
    const Tensor b = test::gaussianTensor(
        Shape{k, n}, static_cast<uint64_t>(k * 17 + n));
    const Tensor c = matmul(a, b);
    for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (int64_t kk = 0; kk < k; ++kk)
                acc += static_cast<double>(a.at(i, kk)) * b.at(kk, j);
            EXPECT_NEAR(c.at(i, j), acc, 1e-4 * (1.0 + std::fabs(acc)));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulParamTest,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{1, 7, 3},
                      std::tuple{5, 1, 5}, std::tuple{8, 8, 8},
                      std::tuple{3, 16, 2}, std::tuple{13, 9, 11}));

} // namespace
} // namespace mant
