#include <cmath>

#include <gtest/gtest.h>

#include "core/parallel.h"
#include "model/generation.h"
#include "model/model_profiles.h"
#include "model/transformer.h"
#include "tensor/stats.h"
#include "test_util.h"

namespace mant {
namespace {

std::vector<int32_t>
tokens(int n, uint64_t seed, int vocab)
{
    Rng rng(seed);
    std::vector<int32_t> t(static_cast<size_t>(n));
    for (auto &x : t)
        x = static_cast<int32_t>(rng.uniformInt(
            static_cast<uint64_t>(vocab)));
    return t;
}

class TransformerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        profile_ = test::tinyProfile();
        weights_ = ModelWeights::generate(profile_, 128);
        toks_ = tokens(24, 900, 128);
    }

    ModelProfile profile_;
    ModelWeights weights_;
    std::vector<int32_t> toks_;
};

TEST_F(TransformerTest, PrefillShapeAndDeterminism)
{
    Transformer m(weights_, fp16Setup());
    const Tensor a = m.prefill(toks_);
    const Tensor b = m.prefill(toks_);
    EXPECT_EQ(a.shape(), Shape({24, 128}));
    EXPECT_EQ(test::maxDiff(a.span(), b.span()), 0.0);
}

TEST_F(TransformerTest, DecodeMatchesPrefill)
{
    // Logits for position t computed incrementally (prefill prefix +
    // decode steps) must match the full-sequence prefill.
    Transformer full(weights_, fp16Setup());
    const Tensor ref = full.prefill(toks_);

    Transformer inc(weights_, fp16Setup());
    std::vector<int32_t> prefix(toks_.begin(), toks_.begin() + 16);
    inc.prefill(prefix);
    std::vector<float> last;
    for (size_t t = 16; t < toks_.size(); ++t)
        last = inc.decodeStep(toks_[t]);

    const auto ref_last = ref.row(ref.shape().dim(0) - 1);
    ASSERT_EQ(last.size(), ref_last.size());
    for (size_t i = 0; i < last.size(); ++i)
        EXPECT_NEAR(last[i], ref_last[i],
                    1e-3f * (1.0f + std::fabs(ref_last[i])));
}

TEST_F(TransformerTest, PositionTracking)
{
    Transformer m(weights_, fp16Setup());
    m.prefill(toks_);
    EXPECT_EQ(m.position(), 24);
    m.decodeStep(5);
    EXPECT_EQ(m.position(), 25);
    m.reset();
    EXPECT_EQ(m.position(), 0);
}

TEST_F(TransformerTest, LogitScaleMultiplies)
{
    Transformer m(weights_, fp16Setup());
    m.setLogitScale(1.0f);
    const Tensor a = m.prefill(toks_);
    m.setLogitScale(2.0f);
    const Tensor b = m.prefill(toks_);
    for (int64_t i = 0; i < a.numel(); ++i)
        EXPECT_NEAR(b[i], 2.0f * a[i], 1e-3f * (1.0f + std::fabs(a[i])));
}

TEST_F(TransformerTest, QuantizedWeightsPerturbLogitsSlightly)
{
    Transformer ref(weights_, fp16Setup());
    Transformer mant(weights_, mantW4A8Setup());
    const Tensor a = ref.prefill(toks_);
    const Tensor b = mant.prefill(toks_);
    const double err = nmse(a.span(), b.span());
    EXPECT_GT(err, 0.0);
    EXPECT_LT(err, 0.3);
}

TEST_F(TransformerTest, FusedInferenceTracksFloatMantPath)
{
    // The fused-tile integer path is a different (but equally valid)
    // W4A8 evaluation: group-wise INT8 activations consumed by the
    // MAC+SAC datapath instead of float-requantized activations
    // through linearNT. Logits must stay close to the float MANT
    // path and to FP16.
    Transformer fp16(weights_, fp16Setup());
    Transformer fl(weights_, mantW4A8Setup(64));
    Transformer fused(weights_, mantFusedSetup(64));
    const Tensor ref = fp16.prefill(toks_);
    const Tensor a = fl.prefill(toks_);
    const Tensor b = fused.prefill(toks_);
    ASSERT_EQ(b.shape(), a.shape());
    EXPECT_LT(nmse(a.span(), b.span()), 5e-3);
    EXPECT_LT(nmse(ref.span(), b.span()), 5e-2);
}

TEST_F(TransformerTest, FusedInferenceDecodeRuns)
{
    // Exercises the scratch-reuse decode loop: repeated M=1 forwards
    // through every linear slot, KV growth included.
    Transformer fused(weights_, mantFusedSetup(64));
    std::vector<int32_t> prefix(toks_.begin(), toks_.begin() + 8);
    fused.prefill(prefix);
    std::vector<float> last;
    for (size_t t = 8; t < 16; ++t)
        last = fused.decodeStep(toks_[t]);
    ASSERT_EQ(last.size(), 128u);
    for (float v : last)
        EXPECT_TRUE(std::isfinite(v));
    EXPECT_EQ(fused.position(), 16);
}

TEST_F(TransformerTest, FusedInferenceDeterministicAcrossThreads)
{
    Transformer fused(weights_, mantFusedSetup(64));
    setMaxThreads(1);
    const Tensor a = fused.prefill(toks_);
    setMaxThreads(8);
    const Tensor b = fused.prefill(toks_);
    setMaxThreads(0);
    EXPECT_EQ(test::maxDiff(a.span(), b.span()), 0.0);
}

TEST_F(TransformerTest, MantKvCacheRuns)
{
    QuantSetup setup = mantFullSetup();
    Transformer m(weights_, setup);
    const Tensor logits = m.prefill(toks_);
    EXPECT_EQ(logits.shape(), Shape({24, 128}));
    // KV caches hold quantized rows.
    EXPECT_EQ(m.cache(0, 0).size(), 24);
    EXPECT_FALSE(m.cache(0, 0).kSelections().empty());
}

TEST_F(TransformerTest, Int4KvWorseThanFp16Kv)
{
    Transformer ref(weights_, fp16Setup());
    const Tensor a = ref.prefill(toks_);

    QuantSetup int4kv = fp16Setup();
    int4kv.kv = KvMethod::Int4;
    int4kv.kvGroup = 16;
    Transformer m4(weights_, int4kv);
    const Tensor b = m4.prefill(toks_);

    const double err = nmse(a.span(), b.span());
    EXPECT_GT(err, 0.0);
    EXPECT_LT(err, 1.0);
}

TEST_F(TransformerTest, MantKvBeatsIntKvOnCacheReconstruction)
{
    // Compare at the cache level, where the claim is deterministic:
    // adaptive MANT must reconstruct real K/V data at least as well as
    // the fixed INT4 grid through the same real-time machinery.
    const auto samples =
        Transformer::collectKvSamples(weights_, toks_);
    const VarianceSelector mant_sel =
        VarianceSelector::calibrateMulti(samples, 16);
    MantSelection int_selection;
    int_selection.isInt = true;
    const VarianceSelector int_sel =
        VarianceSelector::fixed(int_selection);

    double mant_err = 0.0, int_err = 0.0;
    std::vector<float> out;
    for (const Tensor &t : samples) {
        const int64_t inner = t.shape().innerDim();
        const int64_t outer = t.shape().outerCount();
        out.resize(static_cast<size_t>(inner));
        for (int64_t r = 0; r < outer; ++r) {
            const auto row = t.row(r);
            spatialQuantizeRow(row, 16, mant_sel, out);
            for (size_t i = 0; i < row.size(); ++i) {
                const double d = row[i] - out[i];
                mant_err += d * d;
            }
            spatialQuantizeRow(row, 16, int_sel, out);
            for (size_t i = 0; i < row.size(); ++i) {
                const double d = row[i] - out[i];
                int_err += d * d;
            }
        }
    }
    EXPECT_LT(mant_err, int_err * 1.05);
}

TEST_F(TransformerTest, DecodeWithMantKv)
{
    Transformer m(weights_, mantFullSetup());
    m.prefill(toks_);
    for (int i = 0; i < 20; ++i) {
        const auto logits = m.decodeStep(i % 128);
        EXPECT_EQ(logits.size(), 128u);
        for (float v : logits)
            ASSERT_TRUE(std::isfinite(v));
    }
    EXPECT_EQ(m.position(), 44);
}

TEST_F(TransformerTest, OptFamilyForward)
{
    ModelProfile opt = test::tinyProfile(ModelFamily::Opt);
    const ModelWeights w = ModelWeights::generate(opt, 128);
    Transformer m(w, fp16Setup());
    const Tensor logits = m.prefill(toks_);
    EXPECT_EQ(logits.shape(), Shape({24, 128}));
    for (int64_t i = 0; i < logits.numel(); ++i)
        ASSERT_TRUE(std::isfinite(logits[i]));
}

TEST_F(TransformerTest, BloomFamilyForward)
{
    ModelProfile bloom = test::tinyProfile(ModelFamily::Bloom);
    const ModelWeights w = ModelWeights::generate(bloom, 128);
    Transformer m(w, fp16Setup());
    const Tensor logits = m.prefill(toks_);
    for (int64_t i = 0; i < logits.numel(); ++i)
        ASSERT_TRUE(std::isfinite(logits[i]));
}

TEST_F(TransformerTest, CollectKvSamplesShape)
{
    const auto samples = Transformer::collectKvSamples(weights_, toks_);
    // layers * heads * 2 (K and V) tensors.
    EXPECT_EQ(samples.size(), 2u * 2u * 2u);
    // K sample: (positions, headDim); V sample transposed.
    EXPECT_EQ(samples[0].shape(), Shape({24, 32}));
    EXPECT_EQ(samples[1].shape(), Shape({32, 24}));
}

TEST(ModelProfiles, CatalogueComplete)
{
    EXPECT_EQ(allModelProfiles().size(), 10u);
    EXPECT_EQ(modelProfile("llama-1-7b").fp16Ppl, 5.68);
    EXPECT_EQ(modelProfile("opt-6.7b").family, ModelFamily::Opt);
    EXPECT_EQ(modelProfile("llama-1-65b").archDims.nLayers, 80);
    EXPECT_THROW(modelProfile("gpt-5"), std::invalid_argument);
}

TEST(ModelWeights, GenerateDeterministic)
{
    const ModelProfile p = test::tinyProfile();
    const ModelWeights a = ModelWeights::generate(p, 64);
    const ModelWeights b = ModelWeights::generate(p, 64);
    EXPECT_EQ(test::maxDiff(a.layers[0].wq.span(),
                            b.layers[0].wq.span()),
              0.0);
    EXPECT_EQ(test::maxDiff(a.embedding.span(), b.embedding.span()),
              0.0);
}

TEST(ModelWeights, NamedLinearWeightsLlamaVsOpt)
{
    const ModelWeights llama =
        ModelWeights::generate(test::tinyProfile(ModelFamily::Llama), 64);
    const ModelWeights opt =
        ModelWeights::generate(test::tinyProfile(ModelFamily::Opt), 64);
    // LLaMA: 7 matrices per layer; OPT: 6 (no wUp).
    EXPECT_EQ(llama.namedLinearWeights().size(), 2u * 7u);
    EXPECT_EQ(opt.namedLinearWeights().size(), 2u * 6u);
}

} // namespace
} // namespace mant
