/**
 * @file
 * Shared test helpers: small deterministic tensors, a tiny model
 * profile that keeps transformer tests fast, and tolerance utilities.
 */

#ifndef MANT_TESTS_TEST_UTIL_H_
#define MANT_TESTS_TEST_UTIL_H_

#include <cstring>
#include <vector>

#include "core/parallel.h"
#include "core/simd.h"
#include "model/config.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace mant::test {

/** Deterministic Gaussian tensor. */
inline Tensor
gaussianTensor(Shape shape, uint64_t seed, double sigma = 1.0)
{
    Tensor t(shape);
    Rng rng(seed);
    for (int64_t i = 0; i < t.numel(); ++i)
        t[i] = static_cast<float>(rng.gaussian(0.0, sigma));
    return t;
}

/** Tiny model profile for fast transformer tests. */
inline ModelProfile
tinyProfile(ModelFamily family = ModelFamily::Llama)
{
    ModelProfile p;
    p.name = "tiny";
    p.family = family;
    p.simDims.nLayers = 2;
    p.simDims.dModel = 64;
    p.simDims.nHeads = 2;
    p.simDims.dFfn = 96;
    p.simDims.vocab = 128;
    p.archDims = p.simDims;
    p.fp16Ppl = 8.0;
    p.seed = 7;
    p.actStats.outlierChannelRate = 0.02;
    return p;
}

/** Run fn under a pinned SIMD path and thread count, restoring the
 *  Auto/default configuration afterwards (parity-suite helper). */
template <typename Fn>
auto
withPath(SimdPath path, int threads, Fn &&fn)
{
    setSimdPath(path);
    setMaxThreads(threads);
    auto restore = [] {
        setSimdPath(SimdPath::Auto);
        setMaxThreads(0);
    };
    try {
        auto result = fn();
        restore();
        return result;
    } catch (...) {
        restore();
        throw;
    }
}

/** Bitwise equality of two float spans (the determinism-contract
 *  comparison — NaN-safe, unlike element-wise ==). */
inline bool
bytesEqual(std::span<const float> a, std::span<const float> b)
{
    return a.size() == b.size() &&
           std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) ==
               0;
}

/** Max |a-b| over two spans. */
inline double
maxDiff(std::span<const float> a, std::span<const float> b)
{
    double m = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::fabs(static_cast<double>(a[i]) - b[i]));
    return m;
}

} // namespace mant::test

#endif // MANT_TESTS_TEST_UTIL_H_
