#include <cmath>

#include <gtest/gtest.h>

#include "core/variance_selector.h"
#include "tensor/distribution.h"
#include "test_util.h"

namespace mant {
namespace {

TEST(VarianceSelector, AnalyticTableSortedAndTotal)
{
    const VarianceSelector sel = VarianceSelector::analytic();
    const auto table = sel.table();
    ASSERT_EQ(table.size(), 16u); // 15 coefficients + INT
    for (size_t i = 1; i < table.size(); ++i)
        EXPECT_GT(table[i].meanVariance, table[i - 1].meanVariance);
    // Ranges tile the whole real line.
    EXPECT_TRUE(std::isinf(table.front().varLo));
    EXPECT_TRUE(std::isinf(table.back().varHi));
    for (size_t i = 1; i < table.size(); ++i)
        EXPECT_DOUBLE_EQ(table[i].varLo, table[i - 1].varHi);
}

TEST(VarianceSelector, AnalyticGridVarianceIncreasesWithA)
{
    // Higher a -> more uniform grid -> higher variance; INT highest.
    const VarianceSelector sel = VarianceSelector::analytic();
    const auto table = sel.table();
    // The last (highest-variance) entry must be the INT option.
    EXPECT_TRUE(table.back().sel.isInt);
    // Low-variance end is small-a MANT.
    EXPECT_FALSE(table.front().sel.isInt);
    EXPECT_LE(table.front().sel.a, 10);
}

TEST(VarianceSelector, SelectByRange)
{
    const VarianceSelector sel = VarianceSelector::analytic();
    const auto table = sel.table();
    // Selecting exactly at a mean variance returns that entry.
    for (const auto &e : table) {
        const MantSelection &s = sel.select(e.meanVariance);
        EXPECT_EQ(s.isInt, e.sel.isInt);
        if (!s.isInt) {
            EXPECT_EQ(s.a, e.sel.a);
        }
    }
}

TEST(VarianceSelector, ExtremesSelectEnds)
{
    const VarianceSelector sel = VarianceSelector::analytic();
    const auto table = sel.table();
    const MantSelection &lo = sel.select(-1.0);
    const MantSelection &hi = sel.select(10.0);
    EXPECT_EQ(lo.a, table.front().sel.a);
    EXPECT_EQ(hi.isInt, table.back().sel.isInt);
}

TEST(VarianceSelector, CalibrationLearnsDataRanges)
{
    // Calibrate on synthetic weights with shape diversity; the table
    // must be non-empty, sorted, and cover several types.
    DistProfile p;
    p.laplaceMix = 0.4;
    p.uniformMix = 0.2;
    p.groupDrift = 0.4;
    Rng rng(71);
    const Tensor w = genWeightMatrix(rng, 64, 512, p);
    const VarianceSelector sel = VarianceSelector::calibrate(w, 64);
    EXPECT_GE(sel.table().size(), 3u);
    int64_t winners = 0;
    for (const auto &e : sel.table())
        winners += e.winners;
    EXPECT_EQ(winners, 64 * 512 / 64);
}

TEST(VarianceSelector, CalibratedSelectionErrorNearMseSearch)
{
    // The variance shortcut is a lossy but cheap approximation of the
    // exhaustive MSE search (Sec. V-C): on held-out groups its total
    // quantization error must stay within a modest factor of the
    // search's, and far below plain INT4.
    DistProfile p;
    p.groupDrift = 0.4;
    Rng rng(72);
    const Tensor calib = genWeightMatrix(rng, 64, 512, p);
    const VarianceSelector sel = VarianceSelector::calibrate(calib, 64);

    Rng rng2(73);
    const Tensor test_data = genWeightMatrix(rng2, 16, 512, p);
    double fast_err = 0.0, slow_err = 0.0;
    std::vector<float> out(64);
    for (int64_t r = 0; r < 16; ++r) {
        for (int64_t g0 = 0; g0 + 64 <= 512; g0 += 64) {
            std::span<const float> group(test_data.data() + r * 512 + g0,
                                         64);
            StreamingStats st;
            st.addAll(group);
            const MantSelection &fast = sel.selectFromStats(st);
            applySelection(group, fast, out);
            for (size_t i = 0; i < 64; ++i) {
                const double d = group[i] - out[i];
                fast_err += d * d;
            }
            slow_err += searchCoefficient(group).err;
        }
    }
    EXPECT_LT(fast_err, slow_err * 2.0);
    EXPECT_GE(fast_err, slow_err * 0.999); // search is optimal
}

TEST(VarianceSelector, FixedSelectorAlwaysReturnsSame)
{
    MantSelection int_sel;
    int_sel.isInt = true;
    const VarianceSelector sel = VarianceSelector::fixed(int_sel);
    for (double v : {-1.0, 0.0, 0.1, 0.5, 100.0})
        EXPECT_TRUE(sel.select(v).isInt);
}

TEST(VarianceSelector, SelectFromStatsMatchesDirect)
{
    const VarianceSelector sel = VarianceSelector::analytic();
    StreamingStats st;
    for (float v : {0.5f, -0.25f, 0.75f, -1.0f, 0.1f})
        st.add(v);
    const MantSelection &a = sel.selectFromStats(st);
    const MantSelection &b = sel.select(st.normalizedVariance());
    EXPECT_EQ(a.isInt, b.isInt);
    EXPECT_EQ(a.a, b.a);
}

TEST(VarianceSelector, CalibrateMultiCombinesTensors)
{
    DistProfile p;
    Rng rng(74);
    std::vector<Tensor> tensors;
    tensors.push_back(genWeightMatrix(rng, 8, 256, p));
    tensors.push_back(genWeightMatrix(rng, 8, 128, p));
    const VarianceSelector sel =
        VarianceSelector::calibrateMulti(tensors, 64);
    int64_t winners = 0;
    for (const auto &e : sel.table())
        winners += e.winners;
    EXPECT_EQ(winners, 8 * 4 + 8 * 2);
}

TEST(VarianceSelector, LowVarianceDataGetsSmallA)
{
    // Spiky data (one large value, the rest tiny) has low normalized
    // variance -> PoT-like grid.
    const VarianceSelector sel = VarianceSelector::analytic();
    StreamingStats st;
    st.add(1.0f);
    for (int i = 0; i < 63; ++i)
        st.add(0.001f);
    const MantSelection &s = sel.selectFromStats(st);
    EXPECT_FALSE(s.isInt);
    EXPECT_LE(s.a, 20);
}

} // namespace
} // namespace mant
