#!/usr/bin/env python3
"""Bench regression gate for the fused-GEMM, serving decode, and
fused-attention paths.

Usage: bench_gate.py [--allow-new] CURRENT_JSON BASELINE_JSON

Reads two google-benchmark JSON files and enforces, for every gated
benchmark present in the baseline:

 1. **Bit-identity**: each optimized benchmark's `checksum` counter
    must equal its reference twin exactly in the CURRENT run. Gated
    pairs (optimized -> reference):

      BM_GemmTiled/<M>     -> BM_GemmRef/<M>       output values
      BM_DecodeBatched/<S> -> BM_DecodeSerial/<S>  generated tokens
      BM_DecodePaged/<S>   -> BM_DecodeSerialQuantKv/<S>  tokens
      BM_AttnFused/<L>     -> BM_AttnRef/<L>       attention output
      BM_ModelLoad/<S>     -> BM_ModelBuild/<S>    prefill logits

    The tiled path is only a valid optimization while it reproduces
    the reference fused GEMM bit-for-bit, the batched serving
    engine only while every stream's token sequence is byte-identical
    to its serial single-stream run, the paged + chunked-prefill
    engine only while paging stays a pure placement/scheduling change
    (byte-identical tokens vs the serial monolithic-cache run of the
    same quantized-KV model), and the panel-packed attention kernels
    only while they match the flat-view reference exactly
    (docs/ARCHITECTURE.md, determinism contract).

 2. **Throughput**: the optimized/reference speedup ratio
    (items_per_second quotient) must not fall more than 10% below the
    same ratio in the BASELINE file. Gating on the ratio rather than
    absolute time keeps the gate meaningful across runner hardware
    generations; the reference path run in the same process is the
    control. Shapes whose baseline speedup is below MIN_GATED_RATIO
    (near-parity shapes like the M=1 decode, where a 10% band sits
    inside run-to-run noise on shared runners) are checksum-gated
    only, as are the pairs listed in CHECKSUM_ONLY (the cold-start
    load/build ratio spans orders of magnitude and tracks page-cache
    state, not kernel perf — a 10% band is meaningless there).

Gated benchmarks present in the CURRENT run but absent from the
BASELINE (a freshly added pair whose baseline has not been
regenerated yet) fail by default with a pointer to regenerate.
`--allow-new` downgrades them to checksum-only gating with a
baseline-pending note — for the window between adding a benchmark
and landing its regenerated baseline.

Exit status 0 when every shape passes, 1 otherwise.
"""

import json
import sys

MIN_GATED_RATIO = 1.2

# optimized-benchmark prefix -> reference-twin prefix
PAIRS = {
    "BM_GemmTiled": "BM_GemmRef",
    "BM_DecodeBatched": "BM_DecodeSerial",
    "BM_DecodePaged": "BM_DecodeSerialQuantKv",
    "BM_AttnFused": "BM_AttnRef",
    "BM_ModelLoad": "BM_ModelBuild",
}

# Optimized prefixes gated on bit-identity only — their speedup is
# real but environment-bound (mmap + page cache vs quantization
# compute), so a relative ratio band would gate runner state, not
# code.
CHECKSUM_ONLY = {"BM_ModelLoad"}


def checksum_only(name):
    return any(name.startswith(p + "/") for p in CHECKSUM_ONLY)


def load(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except OSError as e:
        sys.exit(f"bench_gate: cannot read {path}: {e.strerror}")
    except json.JSONDecodeError as e:
        sys.exit(f"bench_gate: {path} is not valid JSON: {e}")
    out = {}
    for b in data.get("benchmarks", []):
        # Aggregate rows (mean/median/stddev) would double-count.
        if b.get("run_type") == "aggregate":
            continue
        name = b.get("name")
        if name is None:
            sys.exit(f"bench_gate: {path} has a benchmark entry "
                     f"without a 'name' field")
        out[name] = b
    return out


def refname(name):
    """Reference twin of a gated benchmark name, or None."""
    for opt, ref in PAIRS.items():
        if name.startswith(opt + "/"):
            return ref + name[len(opt):]
    return None


def ratio(benches, name):
    ref = benches.get(refname(name))
    opt = benches.get(name)
    if not ref or not opt:
        return None
    try:
        return opt["items_per_second"] / ref["items_per_second"]
    except (KeyError, ZeroDivisionError):
        return None


def checksum_failure(current, name, ref):
    """Bit-identity check; returns a failure line or None."""
    cs_opt = current[name].get("checksum")
    cs_ref = current[ref].get("checksum")
    if cs_opt != cs_ref:
        return (
            f"{name}: checksum mismatch vs reference "
            f"(optimized={cs_opt!r} ref={cs_ref!r}) — the "
            f"optimized path no longer reproduces the reference "
            f"bit-for-bit"
        )
    return None


def main(argv):
    args = list(argv[1:])
    allow_new = "--allow-new" in args
    if allow_new:
        args.remove("--allow-new")
    if len(args) != 2:
        sys.exit(__doc__)
    current = load(args[0])
    baseline = load(args[1])

    shapes = sorted(n for n in baseline if refname(n))
    new_shapes = sorted(
        n for n in current if refname(n) and n not in baseline)
    if not shapes and not new_shapes:
        sys.exit("baseline contains no gated benchmarks")

    failures = []
    for name in new_shapes:
        ref = refname(name)
        if not allow_new:
            failures.append(
                f"{name}: gated benchmark has no baseline entry — "
                f"regenerate BENCH_kernels.baseline.json or pass "
                f"--allow-new while the regenerated baseline is "
                f"pending")
            continue
        if ref not in current:
            failures.append(
                f"{name}: reference twin '{ref}' missing from "
                f"current run — was it filtered out?")
            continue
        fail = checksum_failure(current, name, ref)
        if fail:
            failures.append(fail)
        else:
            cur = ratio(current, name)
            speed = f", speedup {cur:.2f}x" if cur is not None else ""
            print(f"{name}: checksum OK{speed} (baseline pending — "
                  f"ratio not gated this run)")
    for name in shapes:
        ref = refname(name)
        missing = [n for n, src in ((name, current), (ref, current),
                                    (ref, baseline))
                   if n not in src]
        if missing:
            # One clear line per gated shape instead of a KeyError
            # traceback: say which name is absent from which file.
            for n in dict.fromkeys(missing):
                where = " and ".join(
                    w for w, src in (("current run", current),
                                     ("baseline", baseline))
                    if n not in src)
                failures.append(
                    f"{name}: gated benchmark '{n}' missing from "
                    f"{where} — was the benchmark renamed or "
                    f"filtered out?")
            continue
        fail = checksum_failure(current, name, ref)
        if fail:
            failures.append(fail)

        if checksum_only(name):
            if not fail:
                print(f"{name}: checksum OK (checksum-gated pair — "
                      f"ratio not gated)")
            continue
        cur = ratio(current, name)
        base = ratio(baseline, name)
        if cur is None or base is None:
            failures.append(f"{name}: missing items_per_second")
            continue
        if base < MIN_GATED_RATIO:
            print(
                f"{name}: speedup {cur:.2f}x vs baseline {base:.2f}x "
                f"(near parity — checksum-gated only)"
            )
            continue
        floor = 0.9 * base
        status = "OK" if cur >= floor else "REGRESSION"
        print(
            f"{name}: speedup {cur:.2f}x vs baseline {base:.2f}x "
            f"(floor {floor:.2f}x) {status}"
        )
        if cur < floor:
            failures.append(
                f"{name}: speedup {cur:.2f}x fell more than "
                f"10% below the baseline {base:.2f}x"
            )

    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    print(
        f"checked {len(shapes) + len(new_shapes)} shapes "
        f"({len(new_shapes)} baseline-pending), "
        f"{len(failures)} failures"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
