#!/usr/bin/env python3
"""Bench regression gate for the fused-GEMM and serving decode paths.

Usage: bench_gate.py CURRENT_JSON BASELINE_JSON

Reads two google-benchmark JSON files and enforces, for every gated
benchmark present in the baseline:

 1. **Bit-identity**: each optimized benchmark's `checksum` counter
    must equal its reference twin exactly in the CURRENT run. Gated
    pairs (optimized -> reference):

      BM_GemmTiled/<M>     -> BM_GemmRef/<M>       output values
      BM_DecodeBatched/<S> -> BM_DecodeSerial/<S>  generated tokens

    The tiled path is only a valid optimization while it reproduces
    the reference fused GEMM bit-for-bit, and the batched serving
    engine only while every stream's token sequence is byte-identical
    to its serial single-stream run (docs/ARCHITECTURE.md, determinism
    contract).

 2. **Throughput**: the optimized/reference speedup ratio
    (items_per_second quotient) must not fall more than 10% below the
    same ratio in the BASELINE file. Gating on the ratio rather than
    absolute time keeps the gate meaningful across runner hardware
    generations; the reference path run in the same process is the
    control. Shapes whose baseline speedup is below MIN_GATED_RATIO
    (near-parity shapes like the M=1 decode, where a 10% band sits
    inside run-to-run noise on shared runners) are checksum-gated
    only.

Exit status 0 when every shape passes, 1 otherwise.
"""

import json
import sys

MIN_GATED_RATIO = 1.2

# optimized-benchmark prefix -> reference-twin prefix
PAIRS = {
    "BM_GemmTiled": "BM_GemmRef",
    "BM_DecodeBatched": "BM_DecodeSerial",
}


def load(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except OSError as e:
        sys.exit(f"bench_gate: cannot read {path}: {e.strerror}")
    except json.JSONDecodeError as e:
        sys.exit(f"bench_gate: {path} is not valid JSON: {e}")
    out = {}
    for b in data.get("benchmarks", []):
        # Aggregate rows (mean/median/stddev) would double-count.
        if b.get("run_type") == "aggregate":
            continue
        name = b.get("name")
        if name is None:
            sys.exit(f"bench_gate: {path} has a benchmark entry "
                     f"without a 'name' field")
        out[name] = b
    return out


def refname(name):
    """Reference twin of a gated benchmark name, or None."""
    for opt, ref in PAIRS.items():
        if name.startswith(opt + "/"):
            return ref + name[len(opt):]
    return None


def ratio(benches, name):
    ref = benches.get(refname(name))
    opt = benches.get(name)
    if not ref or not opt:
        return None
    try:
        return opt["items_per_second"] / ref["items_per_second"]
    except (KeyError, ZeroDivisionError):
        return None


def main(argv):
    if len(argv) != 3:
        sys.exit(__doc__)
    current = load(argv[1])
    baseline = load(argv[2])

    shapes = sorted(n for n in baseline if refname(n))
    if not shapes:
        sys.exit("baseline contains no gated benchmarks")

    failures = []
    for name in shapes:
        ref = refname(name)
        missing = [n for n, src in ((name, current), (ref, current),
                                    (ref, baseline))
                   if n not in src]
        if missing:
            # One clear line per gated shape instead of a KeyError
            # traceback: say which name is absent from which file.
            for n in dict.fromkeys(missing):
                where = " and ".join(
                    w for w, src in (("current run", current),
                                     ("baseline", baseline))
                    if n not in src)
                failures.append(
                    f"{name}: gated benchmark '{n}' missing from "
                    f"{where} — was the benchmark renamed or "
                    f"filtered out?")
            continue
        cur_opt = current[name]
        cur_ref = current[ref]

        cs_opt = cur_opt.get("checksum")
        cs_ref = cur_ref.get("checksum")
        if cs_opt != cs_ref:
            failures.append(
                f"{name}: checksum mismatch vs reference "
                f"(optimized={cs_opt!r} ref={cs_ref!r}) — the "
                f"optimized path no longer reproduces the reference "
                f"bit-for-bit"
            )

        cur = ratio(current, name)
        base = ratio(baseline, name)
        if cur is None or base is None:
            failures.append(f"{name}: missing items_per_second")
            continue
        if base < MIN_GATED_RATIO:
            print(
                f"{name}: speedup {cur:.2f}x vs baseline {base:.2f}x "
                f"(near parity — checksum-gated only)"
            )
            continue
        floor = 0.9 * base
        status = "OK" if cur >= floor else "REGRESSION"
        print(
            f"{name}: speedup {cur:.2f}x vs baseline {base:.2f}x "
            f"(floor {floor:.2f}x) {status}"
        )
        if cur < floor:
            failures.append(
                f"{name}: speedup {cur:.2f}x fell more than "
                f"10% below the baseline {base:.2f}x"
            )

    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    print(
        f"checked {len(shapes)} shapes, {len(failures)} failures"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
