#!/usr/bin/env python3
"""Determinism-contract lint for the M-ANT tree.

The repository guarantees bit-identical results across MANT_SIMD
backends, MANT_THREADS settings, and batched-vs-serial serving
(docs/ARCHITECTURE.md, "Determinism contract"). The runtime memcmp
suites catch violations after the fact; this lint statically rejects
the constructs that cause them before they land:

  thread-primitive     std::thread / std::jthread / std::async /
                       pthread_create anywhere in src/ except
                       src/core/parallel.cc — all concurrency must flow
                       through parallelFor()'s fixed chunk geometry.
  libc-rand            std::rand / srand / rand() / drand48 /
                       std::random_device / std::mt19937* outside
                       src/tensor/rng.h — randomness must come from the
                       explicit-seed xoshiro256** Rng.
  wall-clock           time() / clock() / gettimeofday /
                       clock_gettime / std::chrono::*_clock in src/ —
                       library results may never depend on when they
                       ran (timing belongs in bench/, outside src/).
  openmp               #pragma omp in src/ or -fopenmp in a
                       CMakeLists.txt — OpenMP schedules are
                       thread-count-dependent.
  fast-math            -ffast-math / -Ofast / -funsafe-math-optimizations
                       / -fassociative-math / -freciprocal-math /
                       -ffinite-math-only / -ffp-contract=fast in any
                       CMakeLists.txt — value-changing FP optimization
                       breaks cross-backend parity.
  fp-contract          every contract-bound TU (src/core/simd_*.cc
                       other than the dispatcher simd.cc, plus
                       src/core/fused_attention.cc, whose fused and
                       reference kernels must round identically) named
                       in src/CMakeLists.txt must be covered by a
                       set_source_files_properties(... COMPILE_OPTIONS)
                       whose expansion contains -ffp-contract=off, so
                       the compiler cannot contract mul+add into FMA on
                       one backend but not another.
  unordered-iteration  iterating a std::unordered_{map,set,multimap,
                       multiset} in kernel/quantizer files (src/core/,
                       src/quant/) — bucket order is
                       implementation-defined, so any accumulation fed
                       by it is nondeterministic.

Usage:
  determinism_lint.py [--repo PATH] [--self-test]

--self-test first replays the known-bad fixtures in tests/lint/ and
fails unless every fixture's declared `lint-expect:` rules fire (and no
others); then the real tree is scanned either way. Exit 0 when clean,
1 on findings or fixture failures, 2 on usage errors.

Fixtures declare their pretend location and expected findings in
leading comment directives:

  // lint-path: src/quant/bad.cc
  // lint-expect: unordered-iteration

(`lint-expect: none` asserts the fixture is clean; CMake fixtures use
`#` comments.)
"""

import argparse
import os
import re
import sys

# Files exempt from specific rules (repo-relative, forward slashes).
THREAD_ALLOWED = {"src/core/parallel.cc"}
RAND_ALLOWED = {"src/tensor/rng.h"}

# Directories whose C++ files are "kernel/quantizer" code for the
# unordered-iteration rule.
UNORDERED_STRICT_DIRS = ("src/core/", "src/quant/")

CXX_EXTS = (".cc", ".h", ".cpp", ".hpp")

THREAD_RE = re.compile(
    r"\bstd\s*::\s*(thread|jthread|async)\b|\bpthread_create\b")
RAND_RE = re.compile(
    r"\bstd\s*::\s*(rand|srand|random_device|mt19937(_64)?|"
    r"minstd_rand0?|default_random_engine)\b"
    r"|(?<![\w:.])s?rand\s*\(|\bdrand48\b|\blrand48\b")
WALLCLOCK_RE = re.compile(
    r"(?<![\w:.])time\s*\(|(?<![\w:.])clock\s*\(|\bgettimeofday\b"
    r"|\bclock_gettime\b"
    r"|\b(system_clock|steady_clock|high_resolution_clock)\b")
OPENMP_PRAGMA_RE = re.compile(r"^\s*#\s*pragma\s+omp\b")
FAST_MATH_RE = re.compile(
    r"-ffast-math|-Ofast\b|-funsafe-math-optimizations"
    r"|-fassociative-math|-freciprocal-math|-ffinite-math-only"
    r"|-ffp-contract=fast|-fopenmp\b")
UNORDERED_DECL_RE = re.compile(
    r"\bstd\s*::\s*unordered_(map|set|multimap|multiset)\s*<[^;]*?\b"
    r"(\w+)\s*(?:[;={(]|$)")
CONTRACT_TU_RE = re.compile(
    r"\bcore/(simd_\w+|fused_attention)\.cc\b")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_cxx_comments_and_strings(text):
    """Blank out comments, string and char literals, preserving line
    structure so finding line numbers stay meaningful."""
    out = []
    i, n = 0, len(text)
    state = None  # None | 'line' | 'block' | 'str' | 'chr' | 'raw'
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
            elif c == "R" and nxt == '"':
                m = re.match(r'R"([^\s()\\]{0,16})\(', text[i:])
                if m:
                    state = "raw"
                    raw_delim = ")" + m.group(1) + '"'
                    out.append(" " * m.end())
                    i += m.end()
                else:
                    out.append(c)
                    i += 1
            elif c == '"':
                state = "str"
                out.append(" ")
                i += 1
            elif c == "'":
                state = "chr"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line":
            if c == "\n":
                state = None
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block":
            if c == "*" and nxt == "/":
                state = None
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state == "raw":
            if text.startswith(raw_delim, i):
                state = None
                out.append(" " * len(raw_delim))
                i += len(raw_delim)
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                state = None
                out.append(" ")
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


def strip_cmake_comments(text):
    return "\n".join(re.sub(r"#.*", "", ln) for ln in text.split("\n"))


def scan_regex(path, text, regex, rule, message, findings,
               per_line_filter=None):
    for lineno, line in enumerate(text.split("\n"), start=1):
        if per_line_filter and not per_line_filter(line):
            continue
        if regex.search(line):
            findings.append(Finding(path, lineno, rule, message))


def lint_cxx(path, raw, findings):
    """Run the C++-source rules against one file at pretend-path
    `path` (repo-relative, forward slashes)."""
    text = strip_cxx_comments_and_strings(raw)

    # OpenMP pragmas are matched on the raw text: they are real
    # directives, not comments.
    for lineno, line in enumerate(raw.split("\n"), start=1):
        if OPENMP_PRAGMA_RE.search(line):
            findings.append(Finding(
                path, lineno, "openmp",
                "OpenMP pragma; its scheduling depends on the thread "
                "count — use parallelFor() (core/parallel.h)"))

    if path not in THREAD_ALLOWED:
        scan_regex(path, text, THREAD_RE, "thread-primitive",
                   "raw threading primitive; all concurrency must go "
                   "through parallelFor() so chunk geometry stays "
                   "thread-count-invariant", findings)
    if path not in RAND_ALLOWED:
        scan_regex(path, text, RAND_RE, "libc-rand",
                   "implementation-defined RNG; use the explicit-seed "
                   "mant::Rng (tensor/rng.h)", findings)
    scan_regex(path, text, WALLCLOCK_RE, "wall-clock",
               "wall-clock/time dependence in library code; results "
               "must not depend on when they ran (timing belongs in "
               "bench/)", findings)

    if path.startswith(UNORDERED_STRICT_DIRS):
        lint_unordered_iteration(path, text, findings)


def lint_unordered_iteration(path, text, findings):
    """Flag iteration over variables declared with an unordered
    container type in the same file (bucket order is implementation-
    defined, so iteration order feeding accumulation is
    nondeterministic)."""
    names = set()
    for m in UNORDERED_DECL_RE.finditer(text):
        names.add(m.group(2))
    if not names:
        return
    alt = "|".join(re.escape(n) for n in sorted(names))
    iter_re = re.compile(
        r"\bfor\s*\([^;)]*[:&]\s*(" + alt + r")\s*\)"    # range-for
        r"|\b(" + alt + r")\s*\.\s*(begin|cbegin)\s*\(")  # iterator
    for lineno, line in enumerate(text.split("\n"), start=1):
        if iter_re.search(line):
            findings.append(Finding(
                path, lineno, "unordered-iteration",
                "iterating an unordered container in kernel/quantizer "
                "code; bucket order is implementation-defined — use a "
                "sorted/indexed container or sort keys first"))


def expand_cmake_vars(value, variables, depth=0):
    if depth > 8:
        return value
    def repl(m):
        return " ".join(variables.get(m.group(1), []))
    new = re.sub(r"\$\{(\w+)\}", repl, value)
    if new != value:
        return expand_cmake_vars(new, variables, depth + 1)
    return new


def parse_cmake_variables(text):
    """Best-effort variable table from set()/list(APPEND) calls."""
    variables = {}
    for m in re.finditer(r"\bset\s*\(\s*(\w+)\s+([^)]*)\)", text,
                         re.DOTALL):
        variables[m.group(1)] = m.group(2).replace('"', " ").split()
    for m in re.finditer(r"\blist\s*\(\s*APPEND\s+(\w+)\s+([^)]*)\)",
                         text, re.DOTALL):
        variables.setdefault(m.group(1), []).extend(
            m.group(2).replace('"', " ").split())
    for name, vals in variables.items():
        variables[name] = expand_cmake_vars(
            " ".join(vals), variables).split()
    return variables


def lint_cmake(path, raw, findings, is_src_cmake):
    text = strip_cmake_comments(raw)

    scan_regex(path, text, FAST_MATH_RE, "fast-math",
               "value-changing FP/OpenMP compiler flag; breaks "
               "bit-identity across backends and thread counts",
               findings)

    if not is_src_cmake:
        return

    # fp-contract rule: every contract-bound TU named in this file
    # (SIMD backends plus the fused-attention kernels, whose fused and
    # reference paths must round identically) must be covered by
    # set_source_files_properties(... COMPILE_OPTIONS ...) whose
    # expansion contains -ffp-contract=off.
    backends = {m.group(1) for m in CONTRACT_TU_RE.finditer(text)
                if m.group(1) != "simd"}  # simd.cc is the dispatcher
    if not backends:
        return
    variables = parse_cmake_variables(text)
    covered = set()
    for m in re.finditer(
            r"set_source_files_properties\s*\(([^)]*)\)", text,
            re.DOTALL):
        args = m.group(1)
        if "COMPILE_OPTIONS" not in args:
            continue
        expanded = expand_cmake_vars(args.replace('"', " "), variables)
        if "-ffp-contract=off" not in expanded:
            continue
        for b in CONTRACT_TU_RE.finditer(args):
            covered.add(b.group(1))
    for backend in sorted(backends - covered):
        findings.append(Finding(
            path, 1, "fp-contract",
            f"contract-bound TU core/{backend}.cc is not covered by a "
            f"set_source_files_properties(... COMPILE_OPTIONS) "
            f"containing -ffp-contract=off; compiler-introduced FMA "
            f"contraction would desync it from the other backends"))


def lint_file(relpath, raw, findings):
    """Dispatch one file (repo-relative path) to the right rule set."""
    base = os.path.basename(relpath)
    if base == "CMakeLists.txt" or relpath.endswith(".cmake"):
        lint_cmake(relpath, raw, findings,
                   is_src_cmake=(relpath == "src/CMakeLists.txt"))
    elif relpath.startswith("src/") and relpath.endswith(CXX_EXTS):
        lint_cxx(relpath, raw, findings)


def iter_repo_files(repo):
    for root, dirs, files in os.walk(os.path.join(repo, "src")):
        dirs.sort()
        for f in sorted(files):
            if f.endswith(CXX_EXTS):
                yield os.path.join(root, f)
    for sub in ("", "src", "tests", "bench", "examples"):
        p = os.path.join(repo, sub, "CMakeLists.txt")
        if os.path.isfile(p):
            yield p


def lint_repo(repo):
    findings = []
    for path in iter_repo_files(repo):
        rel = os.path.relpath(path, repo).replace(os.sep, "/")
        with open(path, encoding="utf-8", errors="replace") as f:
            raw = f.read()
        lint_file(rel, raw, findings)
    return findings


DIRECTIVE_RE = re.compile(
    r"(?://|#)\s*lint-(path|expect):\s*(\S+)")


def run_self_test(repo):
    """Replay tests/lint/ fixtures; return the number of failures."""
    fixture_dir = os.path.join(repo, "tests", "lint")
    if not os.path.isdir(fixture_dir):
        print(f"determinism_lint: fixture dir missing: {fixture_dir}",
              file=sys.stderr)
        return 1
    failures = 0
    fixtures = sorted(
        f for f in os.listdir(fixture_dir)
        if os.path.isfile(os.path.join(fixture_dir, f))
        and not f.startswith(".") and f != "README.md")
    if not fixtures:
        print("determinism_lint: no fixtures found", file=sys.stderr)
        return 1
    for name in fixtures:
        with open(os.path.join(fixture_dir, name),
                  encoding="utf-8") as f:
            raw = f.read()
        path = None
        expected = set()
        for m in DIRECTIVE_RE.finditer(raw):
            if m.group(1) == "path":
                path = m.group(2)
            else:
                expected.add(m.group(2))
        if path is None or not expected:
            print(f"SELF-TEST FAIL {name}: missing lint-path/"
                  f"lint-expect directives", file=sys.stderr)
            failures += 1
            continue
        expected.discard("none")
        findings = []
        lint_file(path, raw, findings)
        fired = {f.rule for f in findings}
        if fired != expected:
            print(f"SELF-TEST FAIL {name}: expected rules "
                  f"{sorted(expected) or ['none']}, got "
                  f"{sorted(fired) or ['none']}", file=sys.stderr)
            for f in findings:
                print(f"  {f}", file=sys.stderr)
            failures += 1
    print(f"determinism_lint self-test: {len(fixtures)} fixtures, "
          f"{failures} failures")
    return failures


def main(argv):
    ap = argparse.ArgumentParser(
        description="M-ANT determinism-contract lint")
    ap.add_argument("--repo", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: parent of tools/)")
    ap.add_argument("--self-test", action="store_true",
                    help="also replay the tests/lint/ fixtures")
    args = ap.parse_args(argv)

    failures = 0
    if args.self_test:
        failures += run_self_test(args.repo)

    findings = lint_repo(args.repo)
    for f in findings:
        print(f"FAIL: {f}", file=sys.stderr)
    print(f"determinism_lint: scanned tree at {args.repo}: "
          f"{len(findings)} findings")
    return 1 if (findings or failures) else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
