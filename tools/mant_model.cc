/**
 * @file
 * Model-container CLI: export a synthetic quantized model to the v2
 * container format, inspect a container's TOC and tile sections, and
 * verify a container end-to-end (mmap load vs read fallback parity).
 *
 * Subcommands:
 *   mant_model export <out.mant> [--profile NAME] [--max-seq N]
 *                     [--group N] [--logit-scale F] [--seed N]
 *   mant_model inspect <model.mant>
 *   mant_model verify <model.mant> [--tokens N]
 *   mant_model profiles
 */

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "core/packed.h"
#include "core/packed_tiles.h"
#include "model/model_file.h"
#include "model/model_profiles.h"
#include "model/quant_setup.h"
#include "model/transformer.h"
#include "model/weights.h"
#include "tensor/rng.h"

namespace {

using namespace mant;

int
usage()
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  mant_model export <out.mant> [--profile NAME] "
        "[--max-seq N]\n"
        "             [--group N] [--logit-scale F] [--seed N]\n"
        "  mant_model inspect <model.mant>\n"
        "  mant_model verify <model.mant> [--tokens N]\n"
        "  mant_model profiles\n");
    return 2;
}

/** Parse `--flag value` pairs after the positional argument. */
struct Flags
{
    std::string profile = "llama-2-7b";
    int64_t maxSeq = 256;
    int64_t group = 64;
    float logitScale = 1.0f;
    uint64_t seed = 0; ///< 0 = keep the profile's own seed
    int64_t tokens = 32;
};

bool
parseFlags(int argc, char **argv, int first, Flags &f)
{
    for (int i = first; i < argc; i += 2) {
        if (i + 1 >= argc)
            return false;
        const std::string key = argv[i];
        const std::string val = argv[i + 1];
        try {
            if (key == "--profile")
                f.profile = val;
            else if (key == "--max-seq")
                f.maxSeq = std::stoll(val);
            else if (key == "--group")
                f.group = std::stoll(val);
            else if (key == "--logit-scale")
                f.logitScale = std::stof(val);
            else if (key == "--seed")
                f.seed = std::stoull(val);
            else if (key == "--tokens")
                f.tokens = std::stoll(val);
            else
                return false;
        } catch (const std::exception &) {
            return false;
        }
    }
    return true;
}

const char *
kindName(ModelSectionKind kind)
{
    switch (kind) {
    case ModelSectionKind::TilePack:
        return "tile";
    case ModelSectionKind::F32:
        return "f32";
    case ModelSectionKind::Meta:
        return "meta";
    }
    return "?";
}

int
cmdExport(const std::string &path, const Flags &f)
{
    ModelProfile profile = modelProfile(f.profile);
    if (f.seed != 0)
        profile.seed = f.seed;
    const ModelWeights weights =
        ModelWeights::generate(profile, f.maxSeq);
    ModelExportOptions opts;
    opts.logitScale = f.logitScale;
    exportModelToFile(path, weights, mantFusedSetup(f.group), opts);

    const MappedFile file = MappedFile::open(path);
    std::printf("exported %s (%s, maxSeq %lld, group %lld): %zu "
                "bytes\n",
                path.c_str(), profile.name.c_str(),
                static_cast<long long>(f.maxSeq),
                static_cast<long long>(f.group), file.size());
    return 0;
}

int
cmdInspect(const std::string &path)
{
    const MappedFile file = MappedFile::open(path);
    const auto toc = parseModelContainer(file.data(), file.size());
    std::printf("%s: %zu bytes, %zu sections (%s)\n", path.c_str(),
                file.size(), toc.size(),
                file.mapped() ? "mmap" : "read");
    std::printf("%-24s %-5s %10s %10s  geometry\n", "name", "kind",
                "offset", "size");

    int64_t weightElems = 0;
    int64_t weightBytes = 0;
    for (const ModelSection &s : toc) {
        std::printf("%-24s %-5s %10llu %10llu", s.name.c_str(),
                    kindName(s.kind),
                    static_cast<unsigned long long>(s.offset),
                    static_cast<unsigned long long>(s.size));
        if (s.kind == ModelSectionKind::TilePack) {
            const MantTilesView v = mapTileSection(
                file.data() + s.offset, s.size, s.offset);
            weightElems += v.rows() * v.cols();
            weightBytes += v.storageBytes();
            std::printf("  %lldx%lld g%lld: %.3f bits/elem",
                        static_cast<long long>(v.rows()),
                        static_cast<long long>(v.cols()),
                        static_cast<long long>(v.groupSize()),
                        v.bitsPerElement());
        } else if (s.kind == ModelSectionKind::F32) {
            std::printf("  %llu floats",
                        static_cast<unsigned long long>(s.size / 4));
        }
        std::printf("\n");
    }
    if (weightElems > 0)
        std::printf("weights: %lld elements in %lld bytes "
                    "(%.3f bits/elem overall)\n",
                    static_cast<long long>(weightElems),
                    static_cast<long long>(weightBytes),
                    8.0 * static_cast<double>(weightBytes) /
                        static_cast<double>(weightElems));
    return 0;
}

int
cmdVerify(const std::string &path, const Flags &f)
{
    auto viaMmap = LoadedModel::load(path);
    auto viaRead = LoadedModel::load(path, /*forceRead=*/true);

    const int64_t vocab =
        viaMmap->weights().profile.simDims.vocab;
    Rng rng(12345);
    std::vector<int32_t> toks(static_cast<size_t>(f.tokens));
    for (auto &t : toks)
        t = static_cast<int32_t>(
            rng.uniformInt(static_cast<uint64_t>(vocab)));

    const Tensor a = viaMmap->transformer().prefill(toks);
    const Tensor b = viaRead->transformer().prefill(toks);
    if (a.numel() != b.numel() ||
        std::memcmp(a.data(), b.data(),
                    static_cast<size_t>(a.numel()) * 4) != 0) {
        std::fprintf(stderr,
                     "FAIL: mmap and read-fallback logits differ\n");
        return 1;
    }
    std::printf("OK: %s (%s, %zu layers) mmap/read prefill parity "
                "over %lld tokens\n",
                path.c_str(),
                viaMmap->weights().profile.name.c_str(),
                viaMmap->weights().layers.size(),
                static_cast<long long>(f.tokens));
    return 0;
}

int
cmdProfiles()
{
    for (const ModelProfile &p : allModelProfiles())
        std::printf("%-12s sim %lldL d%lld ffn%lld vocab%lld\n",
                    p.name.c_str(),
                    static_cast<long long>(p.simDims.nLayers),
                    static_cast<long long>(p.simDims.dModel),
                    static_cast<long long>(p.simDims.dFfn),
                    static_cast<long long>(p.simDims.vocab));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    try {
        if (cmd == "profiles")
            return cmdProfiles();
        if (argc < 3)
            return usage();
        Flags flags;
        if (!parseFlags(argc, argv, 3, flags))
            return usage();
        if (cmd == "export")
            return cmdExport(argv[2], flags);
        if (cmd == "inspect")
            return cmdInspect(argv[2]);
        if (cmd == "verify")
            return cmdVerify(argv[2], flags);
        return usage();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "mant_model %s: %s\n", cmd.c_str(),
                     e.what());
        return 1;
    }
}
