#!/usr/bin/env python3
"""clang-tidy driver for the M-ANT tree.

Runs clang-tidy (config: .clang-tidy at the repo root) over every
first-party translation unit recorded in a build directory's
compile_commands.json, in parallel, and fails on any diagnostic —
`WarningsAsErrors: '*'` means a new finding is a red CI job, so the
check set only grows when the tree is clean under the new check.

Usage:
  run_clang_tidy.py [--build-dir BUILD] [--paths src ...] [-j N]
                    [--clang-tidy BIN] [--quiet]

Exit status: 0 clean, 1 diagnostics found, 2 environment problems
(no clang-tidy binary, no compilation database).

The compilation database comes from CMAKE_EXPORT_COMPILE_COMMANDS=ON
(always on in this tree's root CMakeLists.txt), so any configured build
directory works:

  cmake --preset release && python3 tools/run_clang_tidy.py
"""

import argparse
import json
import multiprocessing
import os
import shutil
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def find_clang_tidy(explicit):
    if explicit:
        return explicit if shutil.which(explicit) else None
    for name in ("clang-tidy", "clang-tidy-19", "clang-tidy-18",
                 "clang-tidy-17", "clang-tidy-16", "clang-tidy-15"):
        if shutil.which(name):
            return name
    return None


def die_env(message):
    """Environment problems exit 2, distinct from diagnostics (1)."""
    print(f"run_clang_tidy: {message}", file=sys.stderr)
    sys.exit(2)


def load_entries(build_dir, roots):
    db = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(db):
        die_env(f"{db} not found — configure a build dir first "
                f"(cmake --preset release); "
                f"CMAKE_EXPORT_COMPILE_COMMANDS is on by default")
    with open(db) as f:
        entries = json.load(f)
    wanted = []
    seen = set()
    abs_roots = [os.path.join(REPO, r) + os.sep for r in roots]
    for e in entries:
        path = os.path.normpath(
            os.path.join(e["directory"], e["file"]))
        if path in seen:
            continue
        if any(path.startswith(r) for r in abs_roots):
            seen.add(path)
            wanted.append(path)
    return sorted(wanted)


def main(argv):
    ap = argparse.ArgumentParser(description="M-ANT clang-tidy gate")
    ap.add_argument("--build-dir",
                    default=os.path.join(REPO, "build"))
    ap.add_argument("--paths", nargs="*", default=["src"],
                    help="repo-relative roots to lint (default: src)")
    ap.add_argument("-j", "--jobs", type=int,
                    default=multiprocessing.cpu_count())
    ap.add_argument("--clang-tidy", default=None,
                    help="clang-tidy binary to use")
    ap.add_argument("--quiet", action="store_true",
                    help="suppress per-file progress lines")
    args = ap.parse_args(argv)

    tidy = find_clang_tidy(args.clang_tidy)
    if not tidy:
        die_env("no clang-tidy binary on PATH "
                "(apt-get install clang-tidy)")

    files = load_entries(args.build_dir, args.paths)
    if not files:
        die_env(f"no TUs under {args.paths} in "
                f"{args.build_dir}/compile_commands.json")

    failures = []

    def run_one(path):
        rel = os.path.relpath(path, REPO)
        proc = subprocess.run(
            [tidy, "-p", args.build_dir, "--quiet", path],
            capture_output=True, text=True)
        # clang-tidy exits nonzero iff a WarningsAsErrors diagnostic
        # fired (or the TU failed to parse — also a failure).
        if proc.returncode != 0:
            failures.append((rel, proc.stdout + proc.stderr))
        elif not args.quiet:
            print(f"  OK {rel}")
        return proc.returncode

    with ThreadPoolExecutor(max_workers=max(1, args.jobs)) as pool:
        list(pool.map(run_one, files))

    for rel, output in sorted(failures):
        print(f"\n=== {rel} ===\n{output.rstrip()}", file=sys.stderr)
    print(f"run_clang_tidy: {len(files)} TUs checked with {tidy}, "
          f"{len(failures)} with diagnostics")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
